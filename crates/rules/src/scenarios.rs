//! The paper's concrete rule sets: the Figure 1 / Table 1 running example,
//! the thirteen Table 4 settings behind the six literature threat types, and
//! the four §4.7 drift-discovered blueprint threats.

use crate::ast::{Action, Cmp, Condition, Rule, RuleId, StateValue, TimeSpec, Trigger};
use crate::channel::Channel;
use crate::device::{Attribute, DeviceKind, Location};
use crate::platform::Platform;

fn set(device: DeviceKind, location: Location, attribute: Attribute, state: StateValue) -> Action {
    Action::SetState {
        device,
        location,
        attribute,
        state,
    }
}

fn rule(id: u32, platform: Platform, trigger: Trigger, actions: Vec<Action>) -> Rule {
    Rule {
        id: RuleId(id),
        platform,
        trigger,
        conditions: Vec::new(),
        actions,
    }
}

/// The nine rules of Table 1 (the Figure 1 interaction graph), ids 1–9.
pub fn table1_rules() -> Vec<Rule> {
    use DeviceKind::*;
    use Location::House;
    use StateValue::*;
    vec![
        // 1. SmartThings: Turn off lights if playing movies.
        Rule {
            id: RuleId(1),
            platform: Platform::SmartThings,
            trigger: Trigger::DeviceState {
                device: Tv,
                location: Location::LivingRoom,
                attribute: Attribute::Playing,
                state: On,
            },
            conditions: vec![],
            actions: vec![set(Light, House, Attribute::Power, Off)],
        },
        // 2. SmartThings: If outdoor temperature 65–80°F, open windows after sunrise.
        Rule {
            id: RuleId(2),
            platform: Platform::SmartThings,
            trigger: Trigger::ChannelRange {
                channel: Channel::Temperature,
                location: Location::Outdoor,
                lo: 65.0,
                hi: 80.0,
            },
            conditions: vec![Condition::Time(TimeSpec::Sunrise)],
            actions: vec![set(Window, House, Attribute::OpenClose, Open)],
        },
        // 3. SmartThings: If outdoor temperature below 60°F, close windows.
        rule(
            3,
            Platform::SmartThings,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::Outdoor,
                cmp: Cmp::Below,
                value: 60.0,
            },
            vec![set(Window, House, Attribute::OpenClose, Closed)],
        ),
        // 4. SmartThings: Turn on AC when temperature above 85°F.
        rule(
            4,
            Platform::SmartThings,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: House,
                cmp: Cmp::Above,
                value: 85.0,
            },
            vec![set(AirConditioner, House, Attribute::Power, On)],
        ),
        // 5. IFTTT: If air conditioner is on, then close windows.
        rule(
            5,
            Platform::Ifttt,
            Trigger::DeviceState {
                device: AirConditioner,
                location: House,
                attribute: Attribute::Power,
                state: On,
            },
            vec![set(Window, House, Attribute::OpenClose, Closed)],
        ),
        // 6. IFTTT: If the smoke alarm is beeping, open the window and unlock the door.
        rule(
            6,
            Platform::Ifttt,
            Trigger::ChannelEvent {
                channel: Channel::Smoke,
                location: House,
            },
            vec![
                set(Window, House, Attribute::OpenClose, Open),
                set(Door, House, Attribute::LockState, Unlocked),
            ],
        ),
        // 7. IFTTT: If motion is detected, turn on lights.
        rule(
            7,
            Platform::Ifttt,
            Trigger::ChannelEvent {
                channel: Channel::Motion,
                location: Location::Hallway,
            },
            vec![set(Light, Location::Hallway, Attribute::Power, On)],
        ),
        // 8. IFTTT: If motion is detected, open the door.
        rule(
            8,
            Platform::Ifttt,
            Trigger::ChannelEvent {
                channel: Channel::Motion,
                location: Location::Hallway,
            },
            vec![set(Door, Location::Hallway, Attribute::OpenClose, Open)],
        ),
        // 9. Alexa: Lock the door if all lights are turned off.
        rule(
            9,
            Platform::Alexa,
            Trigger::DeviceState {
                device: Light,
                location: House,
                attribute: Attribute::Power,
                state: Off,
            },
            vec![set(Door, House, Attribute::LockState, Locked)],
        ),
    ]
}

/// The thirteen Table 4 settings, ids 101–113 (index = setting number + 100).
pub fn table4_settings() -> Vec<Rule> {
    use DeviceKind::*;
    use StateValue::*;
    vec![
        // 1. SmartThings: If outside temperature above 70°F and time is 11 am, open windows.
        Rule {
            id: RuleId(101),
            platform: Platform::SmartThings,
            trigger: Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::Outdoor,
                cmp: Cmp::Above,
                value: 70.0,
            },
            conditions: vec![Condition::Time(TimeSpec::At(11.0))],
            actions: vec![set(Window, Location::House, Attribute::OpenClose, Open)],
        },
        // 2. Alexa: If outside temperature above 70°F, open windows.
        rule(
            102,
            Platform::Alexa,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::Outdoor,
                cmp: Cmp::Above,
                value: 70.0,
            },
            vec![set(Window, Location::House, Attribute::OpenClose, Open)],
        ),
        // 3. IFTTT: If motion at the door and home armed, send a notification.
        Rule {
            id: RuleId(103),
            platform: Platform::Ifttt,
            trigger: Trigger::ChannelEvent {
                channel: Channel::Motion,
                location: Location::Hallway,
            },
            conditions: vec![Condition::HomeMode(Armed)],
            actions: vec![Action::Notify],
        },
        // 4. IFTTT: When light is on, disarm home state.
        rule(
            104,
            Platform::Ifttt,
            Trigger::DeviceState {
                device: Light,
                location: Location::House,
                attribute: Attribute::Power,
                state: On,
            },
            vec![set(Alarm, Location::House, Attribute::Mode, Disarmed)],
        ),
        // 5. SmartThings: Turn on the light at 7 pm.
        rule(
            105,
            Platform::SmartThings,
            Trigger::Time(TimeSpec::At(19.0)),
            vec![set(Light, Location::House, Attribute::Power, On)],
        ),
        // 6. Alexa: Turn on the AC when temperature above 100°F.
        rule(
            106,
            Platform::Alexa,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::House,
                cmp: Cmp::Above,
                value: 100.0,
            },
            vec![set(AirConditioner, Location::House, Attribute::Power, On)],
        ),
        // 7. IFTTT: When humidity below 30%, turn on humidifier and turn off AC.
        rule(
            107,
            Platform::Ifttt,
            Trigger::ChannelThreshold {
                channel: Channel::Humidity,
                location: Location::House,
                cmp: Cmp::Below,
                value: 30.0,
            },
            vec![
                set(Humidifier, Location::House, Attribute::Power, On),
                set(AirConditioner, Location::House, Attribute::Power, Off),
            ],
        ),
        // 8. SmartThings: If smoke is detected, unlock the door.
        rule(
            108,
            Platform::SmartThings,
            Trigger::ChannelEvent {
                channel: Channel::Smoke,
                location: Location::House,
            },
            vec![set(Door, Location::House, Attribute::LockState, Unlocked)],
        ),
        // 9. Alexa: Lock the door at 10 pm every day.
        rule(
            109,
            Platform::Alexa,
            Trigger::Time(TimeSpec::At(22.0)),
            vec![set(Door, Location::House, Attribute::LockState, Locked)],
        ),
        // 10. IFTTT: Turn off the living-room light when bedroom light is on.
        rule(
            110,
            Platform::Ifttt,
            Trigger::DeviceState {
                device: Light,
                location: Location::Bedroom,
                attribute: Attribute::Power,
                state: On,
            },
            vec![set(Light, Location::LivingRoom, Attribute::Power, Off)],
        ),
        // 11. IFTTT: If living-room light turned off and home away, turn on bedroom light.
        Rule {
            id: RuleId(111),
            platform: Platform::Ifttt,
            trigger: Trigger::DeviceState {
                device: Light,
                location: Location::LivingRoom,
                attribute: Attribute::Power,
                state: Off,
            },
            conditions: vec![Condition::HomeMode(AwayMode)],
            actions: vec![set(Light, Location::Bedroom, Attribute::Power, On)],
        },
        // 12. Alexa: Turn on a heater.
        rule(
            112,
            Platform::Alexa,
            Trigger::Voice,
            vec![set(Heater, Location::Bathroom, Attribute::Power, On)],
        ),
        // 13. SmartThings: Open windows if indoor temperature above 80°F.
        rule(
            113,
            Platform::SmartThings,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::House,
                cmp: Cmp::Above,
                value: 80.0,
            },
            vec![set(Window, Location::House, Attribute::OpenClose, Open)],
        ),
    ]
}

/// Rule pairs per Table 4 threat type, as (name, rule ids) — the labeling
/// criteria the paper's volunteers used.
pub fn table4_threat_groups() -> Vec<(&'static str, Vec<u32>)> {
    vec![
        ("condition bypass", vec![101, 102]),
        ("condition block", vec![103, 104, 105]),
        ("action revert", vec![106, 107]),
        ("action conflict", vec![108, 109]),
        ("action loop", vec![110, 111]),
        ("goal conflict", vec![112, 113]),
    ]
}

/// §4.7 "action block": a manual-mode blocker defeats a dimming automation.
/// Ids 201–202 (Home Assistant blueprints).
pub fn action_block_blueprint() -> Vec<Rule> {
    use DeviceKind::*;
    vec![
        // 1. If the light is set in manual mode, keep brightness at 100%.
        Rule {
            id: RuleId(201),
            platform: Platform::HomeAssistant,
            trigger: Trigger::Manual,
            conditions: vec![],
            actions: vec![Action::SetLevel {
                device: Light,
                location: Location::LivingRoom,
                attribute: Attribute::Level,
                value: 100.0,
            }],
        },
        // 2. Dim lights when turning on the TV.
        rule(
            202,
            Platform::HomeAssistant,
            Trigger::DeviceState {
                device: Tv,
                location: Location::LivingRoom,
                attribute: Attribute::Power,
                state: StateValue::On,
            },
            vec![Action::SetLevel {
                device: Light,
                location: Location::LivingRoom,
                attribute: Attribute::Level,
                value: 20.0,
            }],
        ),
    ]
}

/// §4.7 "action ablation": AC-on (heat) vs humidity rule reverting it over
/// time. Ids 211–212.
pub fn action_ablation_blueprint() -> Vec<Rule> {
    use DeviceKind::*;
    use StateValue::*;
    vec![
        rule(
            211,
            Platform::HomeAssistant,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::House,
                cmp: Cmp::Above,
                value: 95.0,
            },
            vec![set(AirConditioner, Location::House, Attribute::Power, On)],
        ),
        rule(
            212,
            Platform::HomeAssistant,
            Trigger::ChannelThreshold {
                channel: Channel::Humidity,
                location: Location::House,
                cmp: Cmp::Below,
                value: 30.0,
            },
            vec![
                set(Humidifier, Location::House, Attribute::Power, On),
                set(AirConditioner, Location::House, Attribute::Power, Off),
            ],
        ),
    ]
}

/// §4.7 "trigger intake": the 9 pm vacuum accidentally trips the motion
/// snapshot rule. Ids 221–222.
pub fn trigger_intake_blueprint() -> Vec<Rule> {
    use DeviceKind::*;
    use StateValue::*;
    vec![
        rule(
            221,
            Platform::HomeAssistant,
            Trigger::ChannelEvent {
                channel: Channel::Motion,
                location: Location::Hallway,
            },
            vec![
                Action::Snapshot {
                    location: Location::Hallway,
                },
                Action::Notify,
            ],
        ),
        rule(
            222,
            Platform::HomeAssistant,
            Trigger::Time(TimeSpec::At(21.0)),
            vec![set(Vacuum, Location::Hallway, Attribute::Power, On)],
        ),
    ]
}

/// §4.7 "condition duplicate": IFTTT music play fakes the occupancy
/// condition that gates the heating blueprint. Ids 231–233.
pub fn condition_duplicate_blueprint() -> Vec<Rule> {
    use DeviceKind::*;
    use StateValue::*;
    vec![
        // occupancy reporter: motion OR door shut OR media playing
        rule(
            231,
            Platform::HomeAssistant,
            Trigger::DeviceState {
                device: Speaker,
                location: Location::Bedroom,
                attribute: Attribute::Playing,
                state: On,
            },
            vec![set(
                PresenceSensor,
                Location::Bedroom,
                Attribute::Mode,
                HomeMode,
            )],
        ),
        // IFTTT: play music in the room from 3 pm to 4 pm
        rule(
            232,
            Platform::Ifttt,
            Trigger::Time(TimeSpec::Between(15.0, 16.0)),
            vec![set(Speaker, Location::Bedroom, Attribute::Playing, On)],
        ),
        // heating when occupied and below 60°F
        Rule {
            id: RuleId(233),
            platform: Platform::HomeAssistant,
            trigger: Trigger::ChannelEvent {
                channel: Channel::Presence,
                location: Location::Bedroom,
            },
            conditions: vec![Condition::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::Bedroom,
                cmp: Cmp::Below,
                value: 60.0,
            }],
            actions: vec![set(Heater, Location::Bedroom, Attribute::Power, On)],
        },
    ]
}

/// All four §4.7 drift blueprints with their paper-assigned names.
pub fn drift_blueprints() -> Vec<(&'static str, Vec<Rule>)> {
    vec![
        ("action block", action_block_blueprint()),
        ("action ablation", action_ablation_blueprint()),
        ("trigger intake", trigger_intake_blueprint()),
        ("condition duplicate", condition_duplicate_blueprint()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::action_triggers;

    #[test]
    fn table1_has_nine_rules_from_three_platforms() {
        let rules = table1_rules();
        assert_eq!(rules.len(), 9);
        let platforms: std::collections::HashSet<_> = rules.iter().map(|r| r.platform).collect();
        assert_eq!(platforms.len(), 3);
    }

    #[test]
    fn running_example_correlations_hold() {
        let rules = table1_rules();
        let get = |id: u32| rules.iter().find(|r| r.id.0 == id).expect("rule id exists");
        // Rule 1 (turn off lights) triggers Rule 9 (lock door when lights off)
        assert!(
            action_triggers(get(1), get(9)).is_some(),
            "1→9 must correlate"
        );
        // Rule 4 (AC on) triggers Rule 5 (close windows when AC on)
        assert!(
            action_triggers(get(4), get(5)).is_some(),
            "4→5 must correlate"
        );
        // Rule 5 (close windows) conflicts with Rule 6's goal, but 6 (open
        // windows) can feed Rule 3's channel? No: rule 3 triggers on LOW
        // outdoor temperature — not caused by opening a window indoors.
        assert!(
            action_triggers(get(6), get(5)).is_none(),
            "6 does not invoke 5"
        );
    }

    #[test]
    fn table4_settings_complete() {
        let rules = table4_settings();
        assert_eq!(rules.len(), 13);
        let groups = table4_threat_groups();
        assert_eq!(groups.len(), 6);
        for (_, ids) in &groups {
            for id in ids {
                assert!(rules.iter().any(|r| r.id.0 == *id), "missing setting {id}");
            }
        }
    }

    #[test]
    fn action_loop_pair_is_cyclic() {
        let rules = table4_settings();
        let get = |id: u32| rules.iter().find(|r| r.id.0 == id).expect("rule exists");
        // settings 10 and 11: bedroom light on → living room off → bedroom on…
        assert!(action_triggers(get(110), get(111)).is_some(), "110→111");
        assert!(action_triggers(get(111), get(110)).is_some(), "111→110");
    }

    #[test]
    fn trigger_intake_physical_path_exists() {
        let rules = trigger_intake_blueprint();
        let vacuum = &rules[1];
        let snapshot = &rules[0];
        assert!(
            action_triggers(vacuum, snapshot).is_some(),
            "vacuum must trip the motion rule"
        );
    }

    #[test]
    fn drift_blueprints_named_like_the_paper() {
        let names: Vec<&str> = drift_blueprints().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "action block",
                "action ablation",
                "trigger intake",
                "condition duplicate"
            ]
        );
    }

    #[test]
    fn all_scenario_rules_render() {
        let mut all = table1_rules();
        all.extend(table4_settings());
        for (_, bp) in drift_blueprints() {
            all.extend(bp);
        }
        for r in &all {
            let text = crate::render::render_rule(r);
            assert!(!text.is_empty());
        }
    }
}
