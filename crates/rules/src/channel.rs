//! Physical and logical environment channels that couple rules together.

use serde::{Deserialize, Serialize};

/// An environment channel — the medium through which one rule's action can
/// invoke another rule's trigger (the paper's "interacting devices and
/// environment channels", Figure 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    Temperature,
    Humidity,
    Smoke,
    Motion,
    Presence,
    Illuminance,
    Sound,
    Power,
    Contact,
    Leak,
    AirQuality,
    Weather,
    /// Armed/disarmed/home/away house mode.
    HomeMode,
    /// Notifications to the user's phone (terminal — nothing triggers on it).
    Notification,
}

impl Channel {
    /// Channels that are house-global: location does not gate coupling.
    pub fn is_global(self) -> bool {
        matches!(
            self,
            Channel::Smoke | Channel::HomeMode | Channel::Weather | Channel::Notification
        )
    }

    /// Channels nothing can trigger on (sinks).
    pub fn is_sink(self) -> bool {
        matches!(self, Channel::Notification)
    }

    /// Lexicon noun used when rendering this channel in text.
    pub fn noun(self) -> &'static str {
        match self {
            Channel::Temperature => "temperature",
            Channel::Humidity => "humidity",
            Channel::Smoke => "smoke",
            Channel::Motion => "motion",
            Channel::Presence => "presence",
            Channel::Illuminance => "brightness",
            Channel::Sound => "sound",
            Channel::Power => "power",
            Channel::Contact => "contact",
            Channel::Leak => "leak",
            Channel::AirQuality => "air quality",
            Channel::Weather => "weather",
            Channel::HomeMode => "home state",
            Channel::Notification => "notification",
        }
    }

    /// All channels (for exhaustive iteration in tests and generators).
    pub fn all() -> &'static [Channel] {
        &[
            Channel::Temperature,
            Channel::Humidity,
            Channel::Smoke,
            Channel::Motion,
            Channel::Presence,
            Channel::Illuminance,
            Channel::Sound,
            Channel::Power,
            Channel::Contact,
            Channel::Leak,
            Channel::AirQuality,
            Channel::Weather,
            Channel::HomeMode,
            Channel::Notification,
        ]
    }
}

/// Direction of an action's influence on a channel.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    /// Pushes the channel value up (heater → temperature).
    Increase,
    /// Pushes the channel value down (AC → temperature).
    Decrease,
    /// Produces a discrete pulse (vacuum → motion, doorbell → sound).
    Pulse,
    /// Sets a discrete value (arm/disarm → home mode).
    Set,
}

impl Effect {
    /// Do two effects on the same channel work against each other?
    pub fn opposes(self, other: Effect) -> bool {
        matches!(
            (self, other),
            (Effect::Increase, Effect::Decrease) | (Effect::Decrease, Effect::Increase)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_channels() {
        assert!(Channel::Smoke.is_global());
        assert!(Channel::HomeMode.is_global());
        assert!(!Channel::Temperature.is_global());
        assert!(!Channel::Motion.is_global());
    }

    #[test]
    fn notification_is_sink() {
        assert!(Channel::Notification.is_sink());
        assert!(Channel::all().iter().filter(|c| c.is_sink()).count() == 1);
    }

    #[test]
    fn opposing_effects() {
        assert!(Effect::Increase.opposes(Effect::Decrease));
        assert!(Effect::Decrease.opposes(Effect::Increase));
        assert!(!Effect::Increase.opposes(Effect::Increase));
        assert!(!Effect::Pulse.opposes(Effect::Set));
    }
}
