//! Render structured rules into platform-flavoured natural-language
//! descriptions — the stand-in for the crawled app/applet/skill texts.
//!
//! Template choice is keyed on the rule id, so rendering is deterministic
//! but phrasing still varies across a corpus (as crawled descriptions do).

use crate::ast::{Action, Cmp, Condition, Rule, StateValue, TimeSpec, Trigger};
use crate::channel::Channel;
use crate::device::{Attribute, DeviceKind, Location};
use crate::platform::Platform;

fn state_word(attribute: Attribute, state: StateValue) -> String {
    match state {
        StateValue::On => "on".into(),
        StateValue::Off => "off".into(),
        StateValue::Open => "open".into(),
        StateValue::Closed => "closed".into(),
        StateValue::Locked => "locked".into(),
        StateValue::Unlocked => "unlocked".into(),
        StateValue::Armed => "armed".into(),
        StateValue::Disarmed => "disarmed".into(),
        StateValue::HomeMode => "home".into(),
        StateValue::AwayMode => "away".into(),
        StateValue::Level(v) => match attribute {
            Attribute::Level => format!("{v:.0}"),
            _ => format!("{v:.0}"),
        },
    }
}

fn action_verb(attribute: Attribute, state: StateValue) -> &'static str {
    match (attribute, state) {
        (Attribute::Power, StateValue::On) => "turn on",
        (Attribute::Power, StateValue::Off) => "turn off",
        (Attribute::OpenClose, StateValue::Open) => "open",
        (Attribute::OpenClose, StateValue::Closed) => "close",
        (Attribute::LockState, StateValue::Locked) => "lock",
        (Attribute::LockState, StateValue::Unlocked) => "unlock",
        (Attribute::Mode, StateValue::Armed) => "arm",
        (Attribute::Mode, StateValue::Disarmed) => "disarm",
        (Attribute::Playing, StateValue::On) => "play",
        (Attribute::Playing, StateValue::Off) => "stop",
        (Attribute::Recording, _) => "record",
        _ => "set",
    }
}

fn device_phrase(device: DeviceKind, location: Location, variant: u32) -> String {
    if location == Location::House || variant.is_multiple_of(2) {
        format!("the {}", device.noun())
    } else {
        format!("the {} {}", location.noun(), device.noun())
    }
}

fn channel_scope(channel: Channel, location: Location, variant: u32) -> String {
    if channel.is_global() || location == Location::House || variant.is_multiple_of(3) {
        channel.noun().to_string()
    } else if location == Location::Outdoor {
        format!("outdoor {}", channel.noun())
    } else {
        format!("{} {}", location.noun(), channel.noun())
    }
}

/// Render a trigger clause (no leading marker word).
pub fn render_trigger(trigger: &Trigger, variant: u32) -> String {
    match trigger {
        Trigger::DeviceState {
            device,
            location,
            attribute,
            state,
        } => {
            let dev = device_phrase(*device, *location, variant);
            match (attribute, state, variant % 2) {
                (Attribute::OpenClose, StateValue::Open, 0) => format!("{dev} opens"),
                (Attribute::OpenClose, StateValue::Closed, 0) => format!("{dev} closes"),
                _ => format!("{dev} is {}", state_word(*attribute, *state)),
            }
        }
        Trigger::ChannelThreshold {
            channel,
            location,
            cmp,
            value,
        } => {
            let scope = channel_scope(*channel, *location, variant);
            let dir = match cmp {
                Cmp::Above => "above",
                Cmp::Below => "below",
            };
            let unit = unit_for(*channel);
            format!("the {scope} is {dir} {value:.0}{unit}")
        }
        Trigger::ChannelRange {
            channel,
            location,
            lo,
            hi,
        } => {
            let scope = channel_scope(*channel, *location, variant);
            let unit = unit_for(*channel);
            format!("the {scope} is between {lo:.0}{unit} and {hi:.0}{unit}")
        }
        Trigger::ChannelEvent { channel, location } => match channel {
            Channel::Motion => {
                if *location == Location::House {
                    "motion is detected".into()
                } else {
                    format!("motion is detected at the {}", location.noun())
                }
            }
            Channel::Smoke => {
                if variant.is_multiple_of(2) {
                    "smoke is detected".into()
                } else {
                    "the smoke alarm is beeping".into()
                }
            }
            Channel::Leak => "a water leak is detected".into(),
            Channel::Presence => {
                if variant.is_multiple_of(2) {
                    "somebody arrives home".into()
                } else {
                    "presence is detected".into()
                }
            }
            Channel::Sound => "sound is detected".into(),
            Channel::Contact => "the contact sensor opens".into(),
            other => format!("{} is detected", other.noun()),
        },
        Trigger::Time(spec) => render_time(spec),
        Trigger::Voice => "a voice command is given".into(),
        Trigger::Manual => "the button is pressed".into(),
    }
}

fn unit_for(channel: Channel) -> &'static str {
    match channel {
        Channel::Temperature => "°F",
        Channel::Humidity => "%",
        _ => "",
    }
}

fn render_time(spec: &TimeSpec) -> String {
    match spec {
        TimeSpec::At(h) => {
            let hh = h.rem_euclid(24.0);
            let (display, suffix) = if hh < 12.0 {
                (if hh < 1.0 { 12.0 } else { hh }, "a.m.")
            } else {
                (if hh < 13.0 { 12.0 } else { hh - 12.0 }, "p.m.")
            };
            format!("time is {display:.0} {suffix}")
        }
        TimeSpec::Between(lo, hi) => format!("time is between {lo:.0} and {hi:.0} oclock"),
        TimeSpec::Sunrise => "sun rises".into(),
        TimeSpec::Sunset => "sun sets".into(),
    }
}

/// Render an action clause (imperative form).
pub fn render_action(action: &Action, variant: u32) -> String {
    match action {
        Action::SetState {
            device,
            location,
            attribute,
            state,
        } => {
            let verb = action_verb(*attribute, *state);
            let dev = device_phrase(*device, *location, variant);
            if *attribute == Attribute::Mode {
                match state {
                    StateValue::AwayMode => "set the home state to away".into(),
                    StateValue::HomeMode => "set the home state to home".into(),
                    _ => format!("{verb} {dev}"),
                }
            } else {
                format!("{verb} {dev}")
            }
        }
        Action::SetLevel {
            device,
            location,
            attribute,
            value,
        } => {
            let dev = device_phrase(*device, *location, variant);
            match attribute {
                Attribute::Level if *device == DeviceKind::Light => {
                    format!("set {dev} brightness to {value:.0}%")
                }
                Attribute::Level
                    if matches!(
                        device,
                        DeviceKind::Thermostat
                            | DeviceKind::Heater
                            | DeviceKind::Oven
                            | DeviceKind::AirConditioner
                            | DeviceKind::WaterHeater
                    ) =>
                {
                    format!("set {dev} temperature to {value:.0}°F")
                }
                _ => format!("set {dev} to {value:.0}"),
            }
        }
        Action::Notify => {
            if variant.is_multiple_of(2) {
                "send a notification".into()
            } else {
                "notify me".into()
            }
        }
        Action::Snapshot { location } => {
            if *location == Location::House {
                "send a camera snapshot".into()
            } else {
                format!("send a camera snapshot of the {}", location.noun())
            }
        }
    }
}

fn render_condition(cond: &Condition, variant: u32) -> String {
    match cond {
        Condition::DeviceState {
            device,
            location,
            attribute,
            state,
        } => {
            let dev = device_phrase(*device, *location, variant);
            format!("{dev} is {}", state_word(*attribute, *state))
        }
        Condition::ChannelThreshold {
            channel,
            location,
            cmp,
            value,
        } => {
            let scope = channel_scope(*channel, *location, variant);
            let dir = match cmp {
                Cmp::Above => "above",
                Cmp::Below => "below",
            };
            format!("the {scope} is {dir} {value:.0}{}", unit_for(*channel))
        }
        Condition::Time(spec) => render_time(spec),
        Condition::HomeMode(state) => {
            format!(
                "the home is in {} state",
                state_word(Attribute::Mode, *state)
            )
        }
    }
}

/// Render a full rule description in the platform's house style.
pub fn render_rule(rule: &Rule) -> String {
    let v = rule.id.0;
    let actions: Vec<String> = rule.actions.iter().map(|a| render_action(a, v)).collect();
    let action_str = match actions.split_last() {
        None => String::from("do nothing"),
        Some((only, [])) => only.clone(),
        Some((last, rest)) => format!("{} and {}", rest.join(", "), last),
    };
    let conds: Vec<String> = rule
        .conditions
        .iter()
        .map(|c| render_condition(c, v))
        .collect();
    let cond_str = if conds.is_empty() {
        String::new()
    } else {
        format!(" and {}", conds.join(" and "))
    };

    let sentence = match (&rule.trigger, rule.platform) {
        (Trigger::Voice, _) => {
            format!("Alexa, {action_str}")
        }
        (trigger, Platform::Ifttt) => {
            let t = render_trigger(trigger, v);
            if v.is_multiple_of(2) {
                format!("If {t}{cond_str}, then {action_str}")
            } else {
                format!("If {t}{cond_str}, {action_str}")
            }
        }
        (trigger, Platform::SmartThings) => {
            let t = render_trigger(trigger, v);
            match v % 3 {
                0 => format!("{} when {t}{cond_str}", capitalize(&action_str)),
                1 => format!("If {t}{cond_str}, then {action_str}"),
                _ => format!("{} if {t}{cond_str}", capitalize(&action_str)),
            }
        }
        (trigger, Platform::HomeAssistant) => {
            let t = render_trigger(trigger, v);
            format!("When {t}{cond_str}, {action_str}")
        }
        (trigger, Platform::Alexa | Platform::GoogleAssistant) => {
            let t = render_trigger(trigger, v);
            if v.is_multiple_of(2) {
                format!("{} if {t}", capitalize(&action_str))
            } else {
                format!("If {t}, {action_str}")
            }
        }
    };
    let mut s = capitalize(&sentence);
    s.push('.');
    s
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RuleId;

    fn rule(id: u32, platform: Platform, trigger: Trigger, actions: Vec<Action>) -> Rule {
        Rule {
            id: RuleId(id),
            platform,
            trigger,
            conditions: Vec::new(),
            actions,
        }
    }

    #[test]
    fn smoke_rule_renders() {
        let r = rule(
            6,
            Platform::Ifttt,
            Trigger::ChannelEvent {
                channel: Channel::Smoke,
                location: Location::House,
            },
            vec![
                Action::SetState {
                    device: DeviceKind::Window,
                    location: Location::House,
                    attribute: Attribute::OpenClose,
                    state: StateValue::Open,
                },
                Action::SetState {
                    device: DeviceKind::Door,
                    location: Location::House,
                    attribute: Attribute::LockState,
                    state: StateValue::Unlocked,
                },
            ],
        );
        let text = render_rule(&r);
        assert!(text.to_lowercase().contains("smoke"), "{text}");
        assert!(text.to_lowercase().contains("open the window"), "{text}");
        assert!(text.to_lowercase().contains("unlock the door"), "{text}");
    }

    #[test]
    fn threshold_rule_renders_with_unit() {
        let r = rule(
            4,
            Platform::SmartThings,
            Trigger::ChannelThreshold {
                channel: Channel::Temperature,
                location: Location::House,
                cmp: Cmp::Above,
                value: 85.0,
            },
            vec![Action::SetState {
                device: DeviceKind::AirConditioner,
                location: Location::House,
                attribute: Attribute::Power,
                state: StateValue::On,
            }],
        );
        let text = render_rule(&r);
        assert!(text.contains("85°F"), "{text}");
        assert!(text.to_lowercase().contains("air conditioner"), "{text}");
    }

    #[test]
    fn voice_rule_renders_as_alexa_command() {
        let r = rule(
            9,
            Platform::Alexa,
            Trigger::Voice,
            vec![Action::SetState {
                device: DeviceKind::Tv,
                location: Location::LivingRoom,
                attribute: Attribute::Playing,
                state: StateValue::On,
            }],
        );
        let text = render_rule(&r);
        assert!(text.starts_with("Alexa,"), "{text}");
    }

    #[test]
    fn rendered_text_round_trips_through_parser() {
        // the NLP pipeline must recover trigger/action nouns from our text
        let r = rule(
            2,
            Platform::Ifttt,
            Trigger::ChannelEvent {
                channel: Channel::Motion,
                location: Location::Hallway,
            },
            vec![Action::SetState {
                device: DeviceKind::Light,
                location: Location::Hallway,
                attribute: Attribute::Power,
                state: StateValue::On,
            }],
        );
        let text = render_rule(&r);
        let parsed = glint_nlp::parse_rule(&text);
        assert!(
            parsed.trigger.nouns.contains(&"motion".to_string()),
            "{text} → {:?}",
            parsed.trigger
        );
        assert!(
            parsed.action.nouns.contains(&"light".to_string()),
            "{text} → {:?}",
            parsed.action
        );
    }

    #[test]
    fn variants_differ_across_ids() {
        let make = |id| {
            rule(
                id,
                Platform::SmartThings,
                Trigger::ChannelEvent {
                    channel: Channel::Motion,
                    location: Location::House,
                },
                vec![Action::SetState {
                    device: DeviceKind::Light,
                    location: Location::Bedroom,
                    attribute: Attribute::Power,
                    state: StateValue::On,
                }],
            )
        };
        let texts: std::collections::HashSet<String> =
            (0..6).map(|i| render_rule(&make(i))).collect();
        assert!(texts.len() >= 2, "templates never vary: {texts:?}");
    }

    #[test]
    fn time_rendering() {
        assert_eq!(render_time(&TimeSpec::At(19.0)), "time is 7 p.m.");
        assert_eq!(render_time(&TimeSpec::At(7.0)), "time is 7 a.m.");
        assert_eq!(render_time(&TimeSpec::Sunset), "sun sets");
    }
}
