//! Seeded synthetic rule-corpus generation at Table 2 proportions.
//!
//! The generator samples *semantically coherent* rules: triggers only fire on
//! channels some device can produce, actions only target device attributes
//! that exist, and platform capability profiles are respected (IFTTT applets
//! are single-trigger, Alexa rules are mostly voice commands, SmartThings and
//! Home Assistant rules may carry conditions).

use crate::ast::{Action, Cmp, Condition, Rule, RuleId, StateValue, TimeSpec, Trigger};
use crate::channel::Channel;
use crate::device::{Attribute, DeviceKind, Location};
use crate::platform::Platform;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Corpus scale configuration.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Multiplier on Table 2 counts (1.0 = paper scale). The IFTTT count is
    /// additionally capped so laptop-scale runs stay tractable.
    pub scale: f64,
    /// Hard cap per platform after scaling.
    pub per_platform_cap: usize,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            scale: 0.01,
            per_platform_cap: 20_000,
            seed: 0x6117,
        }
    }
}

impl CorpusConfig {
    /// Read scale from the `GLINT_SCALE` env var (default 0.01).
    pub fn from_env() -> Self {
        let scale = std::env::var("GLINT_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.01);
        Self {
            scale,
            ..Self::default()
        }
    }

    /// Target rule count for a platform under this config (at least 30 so
    /// every platform stays usable at tiny scales).
    pub fn count_for(&self, platform: Platform) -> usize {
        let scaled = (platform.paper_rule_count() as f64 * self.scale).round() as usize;
        scaled.clamp(30, self.per_platform_cap)
    }
}

/// Deterministic rule generator.
pub struct CorpusGenerator {
    rng: StdRng,
    next_id: u32,
}

impl CorpusGenerator {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Generate a full multi-platform corpus under `config`.
    ///
    /// Every platform's pool is seeded with the paper's scenario rules
    /// (Table 1, Table 4) re-identified into the corpus id space — mirroring
    /// the fact that the crawled corpora contain the literature's known
    /// vulnerable apps (the paper cross-checks its SmartThings graphs
    /// against the known inter-app interaction chains).
    pub fn generate_corpus(config: &CorpusConfig) -> Vec<Rule> {
        let mut g = Self::new(config.seed);
        let mut rules = Vec::new();
        for &p in Platform::all() {
            let n = config.count_for(p);
            for _ in 0..n {
                rules.push(g.rule_for(p));
            }
        }
        let mut scenario = crate::scenarios::table1_rules();
        scenario.extend(crate::scenarios::table4_settings());
        for mut r in scenario {
            r.id = RuleId(g.fresh_id());
            rules.push(r);
        }
        rules
    }

    /// Generate `n` rules for one platform.
    pub fn generate_platform(&mut self, platform: Platform, n: usize) -> Vec<Rule> {
        (0..n).map(|_| self.rule_for(platform)).collect()
    }

    /// Sample one rule respecting the platform's capability profile.
    pub fn rule_for(&mut self, platform: Platform) -> Rule {
        let trigger = if platform.is_voice() && self.rng.gen_bool(0.7) {
            Trigger::Voice
        } else {
            self.sample_trigger()
        };
        let n_actions = if platform.supports_multi_action() && self.rng.gen_bool(0.25) {
            2
        } else {
            1
        };
        let mut actions: Vec<Action> = (0..n_actions).map(|_| self.sample_action()).collect();
        // occasionally append a notification (common in crawled corpora)
        if self.rng.gen_bool(0.12) {
            actions.push(Action::Notify);
        }
        let conditions = if platform.supports_conditions() && self.rng.gen_bool(0.35) {
            vec![self.sample_condition()]
        } else {
            Vec::new()
        };
        Rule {
            id: RuleId(self.fresh_id()),
            platform,
            trigger,
            conditions,
            actions,
        }
    }

    fn sample_location(&mut self) -> Location {
        // most crawled rules are room-scoped; house-wide rules couple with
        // everything and are the minority
        if self.rng.gen_bool(0.2) {
            Location::House
        } else {
            *Location::rooms()
                .choose(&mut self.rng)
                .expect("rooms nonempty")
        }
    }

    /// Sample a trigger that some device could plausibly produce. The mix
    /// mirrors crawled corpora: many schedule/voice-style rules, fewer
    /// environment thresholds.
    pub fn sample_trigger(&mut self) -> Trigger {
        match self.rng.gen_range(0..12) {
            0..=2 => {
                // device-state trigger on an actuatable device
                let device = self.sample_actuator();
                let (attribute, state) = self.sample_attr_state(device);
                Trigger::DeviceState {
                    device,
                    location: self.sample_location(),
                    attribute,
                    state,
                }
            }
            3 => {
                let (channel, lo, hi) = self.sample_numeric_channel();
                let cmp = if self.rng.gen_bool(0.5) {
                    Cmp::Above
                } else {
                    Cmp::Below
                };
                let value = self.rng.gen_range(lo..hi);
                Trigger::ChannelThreshold {
                    channel,
                    location: self.sample_location(),
                    cmp,
                    value: value.round(),
                }
            }
            4 => {
                let (channel, lo, hi) = self.sample_numeric_channel();
                let a = self.rng.gen_range(lo..hi).round();
                let b = self.rng.gen_range(lo..hi).round();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                Trigger::ChannelRange {
                    channel,
                    location: self.sample_location(),
                    lo,
                    hi: hi + 1.0,
                }
            }
            5 | 6 => {
                let channel = *[
                    Channel::Motion,
                    Channel::Smoke,
                    Channel::Leak,
                    Channel::Presence,
                    Channel::Sound,
                    Channel::Contact,
                ]
                .choose(&mut self.rng)
                .expect("nonempty");
                Trigger::ChannelEvent {
                    channel,
                    location: self.sample_location(),
                }
            }
            7..=9 => Trigger::Time(self.sample_time()),
            _ => Trigger::Manual,
        }
    }

    fn sample_time(&mut self) -> TimeSpec {
        match self.rng.gen_range(0..4) {
            0 => TimeSpec::Sunrise,
            1 => TimeSpec::Sunset,
            2 => TimeSpec::At(self.rng.gen_range(0..24) as f32),
            _ => {
                let a = self.rng.gen_range(0..24) as f32;
                let b = self.rng.gen_range(0..24) as f32;
                TimeSpec::Between(a, b)
            }
        }
    }

    fn sample_numeric_channel(&mut self) -> (Channel, f32, f32) {
        match self.rng.gen_range(0..4) {
            0 | 1 => (Channel::Temperature, 40.0, 100.0),
            2 => (Channel::Humidity, 10.0, 90.0),
            _ => (Channel::Illuminance, 0.0, 100.0),
        }
    }

    fn sample_actuator(&mut self) -> DeviceKind {
        let actuators = DeviceKind::actuators();
        *actuators.choose(&mut self.rng).expect("actuators nonempty")
    }

    fn sample_attr_state(&mut self, device: DeviceKind) -> (Attribute, StateValue) {
        let attrs = device.attributes();
        let attribute = *attrs.choose(&mut self.rng).expect("attrs nonempty");
        // polarity skew mirrors crawled corpora: automations mostly turn
        // things ON / open / lock, which also keeps coincidental opposing
        // action pairs at realistic rates
        let state = match attribute {
            Attribute::Power | Attribute::Playing | Attribute::Recording => {
                if self.rng.gen_bool(0.8) {
                    StateValue::On
                } else {
                    StateValue::Off
                }
            }
            Attribute::OpenClose => {
                if self.rng.gen_bool(0.75) {
                    StateValue::Open
                } else {
                    StateValue::Closed
                }
            }
            Attribute::LockState => {
                if self.rng.gen_bool(0.75) {
                    StateValue::Locked
                } else {
                    StateValue::Unlocked
                }
            }
            Attribute::Mode => *[
                StateValue::Armed,
                StateValue::Disarmed,
                StateValue::HomeMode,
                StateValue::AwayMode,
            ]
            .choose(&mut self.rng)
            .expect("nonempty"),
            Attribute::Level => StateValue::Level(self.rng.gen_range(1..100) as f32),
        };
        (attribute, state)
    }

    /// Sample an action on an actuatable device. A substantial share of
    /// crawled applets only notify (emails, spreadsheet rows, pings), which
    /// keeps the interaction density realistic.
    pub fn sample_action(&mut self) -> Action {
        if self.rng.gen_bool(0.3) {
            return Action::Notify;
        }
        let device = self.sample_actuator();
        let (attribute, state) = self.sample_attr_state(device);
        let location = self.sample_location();
        match state {
            StateValue::Level(v) => Action::SetLevel {
                device,
                location,
                attribute,
                value: v,
            },
            s => Action::SetState {
                device,
                location,
                attribute,
                state: s,
            },
        }
    }

    fn sample_condition(&mut self) -> Condition {
        match self.rng.gen_range(0..4) {
            0 => {
                let device = self.sample_actuator();
                let (attribute, state) = self.sample_attr_state(device);
                Condition::DeviceState {
                    device,
                    location: self.sample_location(),
                    attribute,
                    state,
                }
            }
            1 => {
                let (channel, lo, hi) = self.sample_numeric_channel();
                let cmp = if self.rng.gen_bool(0.5) {
                    Cmp::Above
                } else {
                    Cmp::Below
                };
                Condition::ChannelThreshold {
                    channel,
                    location: self.sample_location(),
                    cmp,
                    value: self.rng.gen_range(lo..hi).round(),
                }
            }
            2 => Condition::Time(self.sample_time()),
            _ => Condition::HomeMode(if self.rng.gen_bool(0.5) {
                StateValue::HomeMode
            } else {
                StateValue::AwayMode
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = CorpusConfig {
            scale: 0.001,
            per_platform_cap: 500,
            seed: 1,
        };
        let a = CorpusGenerator::generate_corpus(&cfg);
        let b = CorpusGenerator::generate_corpus(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn table2_proportions_hold() {
        let cfg = CorpusConfig {
            scale: 0.01,
            per_platform_cap: 100_000,
            seed: 2,
        };
        let rules = CorpusGenerator::generate_corpus(&cfg);
        let count = |p: Platform| rules.iter().filter(|r| r.platform == p).count();
        // generated counts plus the seeded scenario rules per platform
        // (Table 1: 6 SmartThings?/… — counted from the scenario fixtures)
        let scenario_count = |p: Platform| {
            let mut s = crate::scenarios::table1_rules();
            s.extend(crate::scenarios::table4_settings());
            s.iter().filter(|r| r.platform == p).count()
        };
        assert_eq!(
            count(Platform::Ifttt),
            3169 + scenario_count(Platform::Ifttt)
        );
        assert_eq!(count(Platform::Alexa), 55 + scenario_count(Platform::Alexa));
        assert_eq!(
            count(Platform::SmartThings),
            30 + scenario_count(Platform::SmartThings)
        );
        assert_eq!(
            count(Platform::HomeAssistant),
            30 + scenario_count(Platform::HomeAssistant)
        );
    }

    #[test]
    fn platform_capabilities_respected() {
        let mut g = CorpusGenerator::new(3);
        let ifttt = g.generate_platform(Platform::Ifttt, 300);
        assert!(
            ifttt.iter().all(|r| r.conditions.is_empty()),
            "IFTTT has no conditions"
        );
        let alexa = g.generate_platform(Platform::Alexa, 300);
        let voice = alexa.iter().filter(|r| r.trigger == Trigger::Voice).count();
        assert!(voice > 150, "Alexa should be mostly voice rules: {voice}");
        assert!(alexa.iter().all(|r| {
            // multi-action not supported (but an appended Notify is allowed)
            r.actions
                .iter()
                .filter(|a| !matches!(a, Action::Notify))
                .count()
                <= 1
        }));
    }

    #[test]
    fn rule_ids_are_unique() {
        let cfg = CorpusConfig {
            scale: 0.002,
            per_platform_cap: 1000,
            seed: 4,
        };
        let rules = CorpusGenerator::generate_corpus(&cfg);
        let ids: std::collections::HashSet<u32> = rules.iter().map(|r| r.id.0).collect();
        assert_eq!(ids.len(), rules.len());
    }

    #[test]
    fn generated_rules_render_nonempty() {
        let mut g = CorpusGenerator::new(5);
        for p in Platform::all() {
            for r in g.generate_platform(*p, 50) {
                let text = crate::render::render_rule(&r);
                assert!(text.len() > 10, "{r:?} → {text}");
                assert!(text.ends_with('.'));
            }
        }
    }

    #[test]
    fn corpus_has_correlated_pairs() {
        // sanity: a realistic corpus must contain some action→trigger pairs
        let mut g = CorpusGenerator::new(6);
        let rules = g.generate_platform(Platform::Ifttt, 300);
        let mut pairs = 0;
        for a in &rules {
            for b in &rules {
                if a.id != b.id && crate::correlation::action_triggers(a, b).is_some() {
                    pairs += 1;
                }
            }
        }
        assert!(pairs > 100, "too few correlated pairs: {pairs}");
    }
}
