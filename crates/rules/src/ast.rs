//! The trigger-condition-action rule AST.

use crate::channel::Channel;
use crate::device::{Attribute, DeviceKind, Location};
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// Stable rule identifier within a corpus.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleId(pub u32);

/// Discrete or continuous state value of a device attribute.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StateValue {
    On,
    Off,
    Open,
    Closed,
    Locked,
    Unlocked,
    Armed,
    Disarmed,
    HomeMode,
    AwayMode,
    /// Continuous level (brightness %, setpoint °F, volume).
    Level(f32),
}

impl StateValue {
    /// Does this value negate `other` on the same attribute?
    pub fn opposes(self, other: StateValue) -> bool {
        use StateValue::*;
        matches!(
            (self, other),
            (On, Off)
                | (Off, On)
                | (Open, Closed)
                | (Closed, Open)
                | (Locked, Unlocked)
                | (Unlocked, Locked)
                | (Armed, Disarmed)
                | (Disarmed, Armed)
                | (HomeMode, AwayMode)
                | (AwayMode, HomeMode)
        )
    }

    /// Is this the "activating" polarity of its attribute (on/open/…)?
    pub fn is_positive(self) -> bool {
        use StateValue::*;
        matches!(self, On | Open | Unlocked | Armed | HomeMode | Level(_))
    }

    /// The opposite discrete value, if one exists.
    pub fn negated(self) -> Option<StateValue> {
        use StateValue::*;
        Some(match self {
            On => Off,
            Off => On,
            Open => Closed,
            Closed => Open,
            Locked => Unlocked,
            Unlocked => Locked,
            Armed => Disarmed,
            Disarmed => Armed,
            HomeMode => AwayMode,
            AwayMode => HomeMode,
            Level(_) => return None,
        })
    }
}

/// Comparison operator for threshold triggers/conditions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    Above,
    Below,
}

impl Cmp {
    pub fn flipped(self) -> Cmp {
        match self {
            Cmp::Above => Cmp::Below,
            Cmp::Below => Cmp::Above,
        }
    }

    pub fn check(self, value: f32, threshold: f32) -> bool {
        match self {
            Cmp::Above => value > threshold,
            Cmp::Below => value < threshold,
        }
    }
}

/// Time specification for time triggers/conditions.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TimeSpec {
    /// Hour-of-day in `[0, 24)` (e.g. 19.5 = 7:30 pm).
    At(f32),
    /// Between two hours (wrapping allowed: 22 → 6).
    Between(f32, f32),
    Sunrise,
    Sunset,
}

impl TimeSpec {
    /// Is `hour` inside this spec (sunrise ≈ 6.5, sunset ≈ 19.5, windows of
    /// ±0.5h around point specs)?
    pub fn matches(self, hour: f32) -> bool {
        let h = hour.rem_euclid(24.0);
        match self {
            TimeSpec::At(t) => (h - t).abs() < 0.5 || (h - t).abs() > 23.5,
            TimeSpec::Between(lo, hi) => {
                if lo <= hi {
                    h >= lo && h <= hi
                } else {
                    h >= lo || h <= hi
                }
            }
            TimeSpec::Sunrise => (h - 6.5).abs() < 0.5,
            TimeSpec::Sunset => (h - 19.5).abs() < 0.5,
        }
    }
}

/// What fires a rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// A device attribute reaches a state ("when the door opens").
    DeviceState {
        device: DeviceKind,
        location: Location,
        attribute: Attribute,
        state: StateValue,
    },
    /// A channel crosses a threshold ("temperature above 85°F").
    ChannelThreshold {
        channel: Channel,
        location: Location,
        cmp: Cmp,
        value: f32,
    },
    /// A channel is inside a range ("between 65°F and 80°F").
    ChannelRange {
        channel: Channel,
        location: Location,
        lo: f32,
        hi: f32,
    },
    /// A discrete channel event ("motion detected", "smoke detected").
    ChannelEvent {
        channel: Channel,
        location: Location,
    },
    /// A scheduled time.
    Time(TimeSpec),
    /// A voice command ("Alexa, …").
    Voice,
    /// Manual interaction (button press / manual mode toggle).
    Manual,
}

impl Trigger {
    /// The channel this trigger listens on, if any.
    pub fn channel(&self) -> Option<Channel> {
        match self {
            Trigger::ChannelThreshold { channel, .. }
            | Trigger::ChannelRange { channel, .. }
            | Trigger::ChannelEvent { channel, .. } => Some(*channel),
            Trigger::DeviceState {
                device, attribute, ..
            } => device_state_channel(*device, *attribute),
            _ => None,
        }
    }

    /// The location the trigger is scoped to (House for global triggers).
    pub fn location(&self) -> Location {
        match self {
            Trigger::DeviceState { location, .. }
            | Trigger::ChannelThreshold { location, .. }
            | Trigger::ChannelRange { location, .. }
            | Trigger::ChannelEvent { location, .. } => *location,
            _ => Location::House,
        }
    }
}

/// The device-observable channel behind a `DeviceState` trigger, e.g.
/// watching a door's OpenClose is watching the Contact channel.
pub fn device_state_channel(device: DeviceKind, attribute: Attribute) -> Option<Channel> {
    use DeviceKind::*;
    match (device, attribute) {
        (Door | Window | GarageDoor | Blinds | Valve, Attribute::OpenClose) => {
            Some(Channel::Contact)
        }
        (Lock | Door, Attribute::LockState) => Some(Channel::Contact),
        (Light, Attribute::Power) => Some(Channel::Illuminance),
        (Alarm | SmokeAlarm, Attribute::Mode) => Some(Channel::HomeMode),
        (Tv | Speaker, Attribute::Playing | Attribute::Power) => Some(Channel::Sound),
        (_, Attribute::Power) => Some(Channel::Power),
        _ => None,
    }
}

/// Extra gating predicate (SmartThings/Home Assistant support these).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    DeviceState {
        device: DeviceKind,
        location: Location,
        attribute: Attribute,
        state: StateValue,
    },
    ChannelThreshold {
        channel: Channel,
        location: Location,
        cmp: Cmp,
        value: f32,
    },
    Time(TimeSpec),
    HomeMode(StateValue),
}

/// What a rule does when it fires.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Set a discrete device state ("turn on the light", "lock the door").
    SetState {
        device: DeviceKind,
        location: Location,
        attribute: Attribute,
        state: StateValue,
    },
    /// Set a continuous level ("set brightness to 100%").
    SetLevel {
        device: DeviceKind,
        location: Location,
        attribute: Attribute,
        value: f32,
    },
    /// Notify the user's phone.
    Notify,
    /// Take a camera snapshot.
    Snapshot { location: Location },
}

impl Action {
    /// Target device, if the action touches one.
    pub fn device(&self) -> Option<(DeviceKind, Location)> {
        match self {
            Action::SetState {
                device, location, ..
            }
            | Action::SetLevel {
                device, location, ..
            } => Some((*device, *location)),
            Action::Snapshot { location } => Some((DeviceKind::Camera, *location)),
            Action::Notify => None,
        }
    }

    pub fn location(&self) -> Location {
        self.device().map_or(Location::House, |(_, l)| l)
    }
}

/// A complete automation rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    pub id: RuleId,
    pub platform: Platform,
    pub trigger: Trigger,
    pub conditions: Vec<Condition>,
    pub actions: Vec<Action>,
}

impl Rule {
    /// Construct with no conditions.
    pub fn simple(id: u32, platform: Platform, trigger: Trigger, actions: Vec<Action>) -> Self {
        Self {
            id: RuleId(id),
            platform,
            trigger,
            conditions: Vec::new(),
            actions,
        }
    }

    /// Devices this rule's actions touch.
    pub fn actuated_devices(&self) -> Vec<(DeviceKind, Location)> {
        self.actions.iter().filter_map(Action::device).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_opposition_is_symmetric() {
        use StateValue::*;
        for (a, b) in [
            (On, Off),
            (Open, Closed),
            (Locked, Unlocked),
            (Armed, Disarmed),
        ] {
            assert!(a.opposes(b) && b.opposes(a));
            assert_eq!(a.negated(), Some(b));
            assert_eq!(b.negated(), Some(a));
        }
        assert!(!On.opposes(Open));
        assert_eq!(Level(5.0).negated(), None);
    }

    #[test]
    fn cmp_check_and_flip() {
        assert!(Cmp::Above.check(90.0, 85.0));
        assert!(!Cmp::Above.check(80.0, 85.0));
        assert!(Cmp::Below.check(25.0, 30.0));
        assert_eq!(Cmp::Above.flipped(), Cmp::Below);
    }

    #[test]
    fn timespec_matching() {
        assert!(TimeSpec::At(19.0).matches(19.2));
        assert!(!TimeSpec::At(19.0).matches(21.0));
        assert!(TimeSpec::Between(22.0, 6.0).matches(23.0)); // wrap
        assert!(TimeSpec::Between(22.0, 6.0).matches(3.0));
        assert!(!TimeSpec::Between(22.0, 6.0).matches(12.0));
        assert!(TimeSpec::Sunset.matches(19.5));
        assert!(TimeSpec::Sunrise.matches(6.4));
    }

    #[test]
    fn trigger_channels() {
        let t = Trigger::DeviceState {
            device: DeviceKind::Door,
            location: Location::Hallway,
            attribute: Attribute::OpenClose,
            state: StateValue::Open,
        };
        assert_eq!(t.channel(), Some(Channel::Contact));
        let t2 = Trigger::ChannelEvent {
            channel: Channel::Smoke,
            location: Location::House,
        };
        assert_eq!(t2.channel(), Some(Channel::Smoke));
        assert_eq!(Trigger::Voice.channel(), None);
    }

    #[test]
    fn rule_actuated_devices() {
        let r = Rule::simple(
            1,
            Platform::Ifttt,
            Trigger::ChannelEvent {
                channel: Channel::Smoke,
                location: Location::House,
            },
            vec![
                Action::SetState {
                    device: DeviceKind::Window,
                    location: Location::Bedroom,
                    attribute: Attribute::OpenClose,
                    state: StateValue::Open,
                },
                Action::Notify,
            ],
        );
        assert_eq!(
            r.actuated_devices(),
            vec![(DeviceKind::Window, Location::Bedroom)]
        );
    }
}
