//! Device taxonomy: what each device kind can sense, actuate, and influence.

use crate::channel::{Channel, Effect};
use serde::{Deserialize, Serialize};

/// Kinds of smart-home devices appearing across the five platforms.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    Light,
    Window,
    Door,
    Lock,
    Thermostat,
    Heater,
    AirConditioner,
    Humidifier,
    Dehumidifier,
    Fan,
    Camera,
    Vacuum,
    Tv,
    Oven,
    Alarm,
    SmokeAlarm,
    MotionSensor,
    ContactSensor,
    PresenceSensor,
    TemperatureSensor,
    HumiditySensor,
    LeakSensor,
    Switch,
    Plug,
    Speaker,
    Doorbell,
    Sprinkler,
    Valve,
    Blinds,
    GarageDoor,
    CoffeeMaker,
    Washer,
    Dryer,
    Dishwasher,
    Button,
    WaterHeater,
    Purifier,
}

/// Controllable / observable attribute of a device.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// On/off power state.
    Power,
    /// Open/closed.
    OpenClose,
    /// Locked/unlocked.
    LockState,
    /// Armed/disarmed or home/away.
    Mode,
    /// Continuous setpoint or level (brightness, temperature, volume).
    Level,
    /// Playing media.
    Playing,
    /// Recording / snapshotting.
    Recording,
}

/// Rooms and zones of the house (Figure 10's layout vocabulary).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    Kitchen,
    Bedroom,
    Bathroom,
    LivingRoom,
    Hallway,
    Garage,
    Garden,
    Office,
    Basement,
    Outdoor,
    /// Whole-house / unspecified.
    House,
}

impl Location {
    /// Can a physical effect at `self` reach a sensor at `other`?
    /// Same room always; `House` couples with every indoor zone; `Outdoor`
    /// couples only with itself and `Garden`.
    pub fn couples_with(self, other: Location) -> bool {
        use Location::*;
        if self == other {
            return true;
        }
        match (self, other) {
            (House, Outdoor) | (Outdoor, House) => false,
            (House, _) | (_, House) => true,
            (Outdoor, Garden) | (Garden, Outdoor) => true,
            (Outdoor, _) | (_, Outdoor) => false,
            _ => false,
        }
    }

    pub fn noun(self) -> &'static str {
        match self {
            Location::Kitchen => "kitchen",
            Location::Bedroom => "bedroom",
            Location::Bathroom => "bathroom",
            Location::LivingRoom => "living room",
            Location::Hallway => "hallway",
            Location::Garage => "garage",
            Location::Garden => "garden",
            Location::Office => "office",
            Location::Basement => "basement",
            Location::Outdoor => "outside",
            Location::House => "house",
        }
    }

    pub fn all() -> &'static [Location] {
        use Location::*;
        &[
            Kitchen, Bedroom, Bathroom, LivingRoom, Hallway, Garage, Garden, Office, Basement,
            Outdoor, House,
        ]
    }

    /// Indoor rooms suitable for placing most devices.
    pub fn rooms() -> &'static [Location] {
        use Location::*;
        &[
            Kitchen, Bedroom, Bathroom, LivingRoom, Hallway, Garage, Office, Basement,
        ]
    }
}

impl DeviceKind {
    /// The lexicon noun used in rendered rule text.
    pub fn noun(self) -> &'static str {
        match self {
            DeviceKind::Light => "light",
            DeviceKind::Window => "window",
            DeviceKind::Door => "door",
            DeviceKind::Lock => "lock",
            DeviceKind::Thermostat => "thermostat",
            DeviceKind::Heater => "heater",
            DeviceKind::AirConditioner => "air conditioner",
            DeviceKind::Humidifier => "humidifier",
            DeviceKind::Dehumidifier => "dehumidifier",
            DeviceKind::Fan => "fan",
            DeviceKind::Camera => "camera",
            DeviceKind::Vacuum => "vacuum",
            DeviceKind::Tv => "tv",
            DeviceKind::Oven => "oven",
            DeviceKind::Alarm => "alarm",
            DeviceKind::SmokeAlarm => "smoke alarm",
            DeviceKind::MotionSensor => "motion sensor",
            DeviceKind::ContactSensor => "contact sensor",
            DeviceKind::PresenceSensor => "presence sensor",
            DeviceKind::TemperatureSensor => "temperature sensor",
            DeviceKind::HumiditySensor => "humidity sensor",
            DeviceKind::LeakSensor => "leak sensor",
            DeviceKind::Switch => "switch",
            DeviceKind::Plug => "plug",
            DeviceKind::Speaker => "speaker",
            DeviceKind::Doorbell => "doorbell",
            DeviceKind::Sprinkler => "sprinkler",
            DeviceKind::Valve => "valve",
            DeviceKind::Blinds => "blinds",
            DeviceKind::GarageDoor => "garage door",
            DeviceKind::CoffeeMaker => "coffee maker",
            DeviceKind::Washer => "washer",
            DeviceKind::Dryer => "dryer",
            DeviceKind::Dishwasher => "dishwasher",
            DeviceKind::Button => "button",
            DeviceKind::WaterHeater => "water heater",
            DeviceKind::Purifier => "purifier",
        }
    }

    /// Attributes this device exposes for control.
    pub fn attributes(self) -> &'static [Attribute] {
        use Attribute::*;
        use DeviceKind::*;
        match self {
            Light => &[Power, Level],
            Window | Blinds | GarageDoor | Valve => &[OpenClose],
            Door => &[OpenClose, LockState],
            Lock => &[LockState],
            Thermostat => &[Power, Level, Mode],
            Heater | AirConditioner | Humidifier | Dehumidifier | Fan | Purifier | WaterHeater => {
                &[Power, Level]
            }
            Camera => &[Power, Recording],
            Vacuum | CoffeeMaker | Washer | Dryer | Dishwasher | Oven | Sprinkler => &[Power],
            Tv | Speaker => &[Power, Playing, Level],
            Alarm | SmokeAlarm => &[Power, Mode],
            MotionSensor | ContactSensor | PresenceSensor | TemperatureSensor | HumiditySensor
            | LeakSensor | Doorbell | Button => &[],
            Switch | Plug => &[Power],
        }
    }

    /// Channels this device can *sense* (what its triggers fire on).
    pub fn senses(self) -> &'static [Channel] {
        use Channel::*;
        use DeviceKind::*;
        match self {
            MotionSensor => &[Motion],
            ContactSensor => &[Contact],
            PresenceSensor => &[Presence],
            TemperatureSensor | Thermostat => &[Temperature],
            HumiditySensor => &[Humidity],
            LeakSensor => &[Leak],
            SmokeAlarm => &[Smoke],
            Camera => &[Motion],
            Doorbell => &[Sound, Motion],
            Button => &[],
            Purifier => &[AirQuality],
            _ => &[],
        }
    }

    /// Channels an *action* on this device influences, with direction.
    /// This is the physical ground truth used for correlation labels and
    /// the threat oracle; direction is for the Power=on / Open action —
    /// turning off / closing flips Increase↔Decrease.
    pub fn affects(self) -> &'static [(Channel, Effect)] {
        use Channel::*;
        use DeviceKind::*;
        use Effect::*;
        match self {
            Light => &[(Illuminance, Increase)],
            Window => &[
                (Temperature, Decrease),
                (Contact, Set),
                (AirQuality, Increase),
            ],
            Door => &[(Contact, Set), (Motion, Pulse)],
            GarageDoor => &[(Contact, Set)],
            Lock => &[(Contact, Set)],
            Heater | WaterHeater => &[(Temperature, Increase), (Power, Increase)],
            AirConditioner => &[
                (Temperature, Decrease),
                (Humidity, Decrease),
                (Power, Increase),
            ],
            Thermostat => &[(Temperature, Increase)],
            Humidifier => &[(Humidity, Increase)],
            Dehumidifier => &[(Humidity, Decrease)],
            Fan => &[(Temperature, Decrease), (Sound, Increase)],
            Vacuum => &[(Motion, Pulse), (Sound, Increase)],
            Tv => &[(Sound, Increase), (Illuminance, Increase)],
            Speaker => &[(Sound, Increase)],
            Oven => &[(Temperature, Increase), (Smoke, Pulse)],
            Alarm => &[(Sound, Increase), (HomeMode, Set)],
            SmokeAlarm => &[(Sound, Increase)],
            Sprinkler => &[(Leak, Increase), (Humidity, Increase)],
            Valve => &[(Leak, Increase)],
            Blinds => &[(Illuminance, Decrease)],
            CoffeeMaker => &[(Power, Increase)],
            Washer | Dryer | Dishwasher => {
                &[(Sound, Increase), (Power, Increase), (Humidity, Increase)]
            }
            Camera => &[],
            Switch | Plug => &[(Power, Increase)],
            Purifier => &[(AirQuality, Decrease), (Power, Increase)],
            MotionSensor | ContactSensor | PresenceSensor | TemperatureSensor | HumiditySensor
            | LeakSensor | Doorbell | Button => &[],
        }
    }

    /// Is this a pure sensor (no controllable attributes)?
    pub fn is_sensor(self) -> bool {
        self.attributes().is_empty()
    }

    /// Actuatable devices (targets of actions).
    pub fn actuators() -> Vec<DeviceKind> {
        Self::all()
            .iter()
            .copied()
            .filter(|d| !d.is_sensor())
            .collect()
    }

    /// Every device kind.
    pub fn all() -> &'static [DeviceKind] {
        use DeviceKind::*;
        &[
            Light,
            Window,
            Door,
            Lock,
            Thermostat,
            Heater,
            AirConditioner,
            Humidifier,
            Dehumidifier,
            Fan,
            Camera,
            Vacuum,
            Tv,
            Oven,
            Alarm,
            SmokeAlarm,
            MotionSensor,
            ContactSensor,
            PresenceSensor,
            TemperatureSensor,
            HumiditySensor,
            LeakSensor,
            Switch,
            Plug,
            Speaker,
            Doorbell,
            Sprinkler,
            Valve,
            Blinds,
            GarageDoor,
            CoffeeMaker,
            Washer,
            Dryer,
            Dishwasher,
            Button,
            WaterHeater,
            Purifier,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensors_have_no_attributes() {
        assert!(DeviceKind::MotionSensor.is_sensor());
        assert!(DeviceKind::Button.is_sensor());
        assert!(!DeviceKind::Light.is_sensor());
    }

    #[test]
    fn ac_and_heater_oppose_on_temperature() {
        let ac: Vec<_> = DeviceKind::AirConditioner.affects().iter().collect();
        let heater: Vec<_> = DeviceKind::Heater.affects().iter().collect();
        let ac_t = ac.iter().find(|(c, _)| *c == Channel::Temperature).unwrap();
        let h_t = heater
            .iter()
            .find(|(c, _)| *c == Channel::Temperature)
            .unwrap();
        assert!(ac_t.1.opposes(h_t.1));
    }

    #[test]
    fn location_coupling() {
        assert!(Location::Kitchen.couples_with(Location::Kitchen));
        assert!(Location::House.couples_with(Location::Bedroom));
        assert!(!Location::Kitchen.couples_with(Location::Bedroom));
        assert!(!Location::Outdoor.couples_with(Location::Kitchen));
        assert!(Location::Outdoor.couples_with(Location::Garden));
        // symmetry
        for &a in Location::all() {
            for &b in Location::all() {
                assert_eq!(a.couples_with(b), b.couples_with(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn every_actuator_affects_or_notifies() {
        // Every non-sensor device except the camera must influence a channel;
        // camera actions only produce notifications/snapshots.
        for d in DeviceKind::actuators() {
            if d == DeviceKind::Camera {
                continue;
            }
            assert!(!d.affects().is_empty(), "{d:?} affects nothing");
        }
    }

    #[test]
    fn all_list_is_exhaustive_and_unique() {
        let all = DeviceKind::all();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        assert!(all.len() >= 35);
    }
}
