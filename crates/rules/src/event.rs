//! Event-log records — the online-stage input (Figure 3b).
//!
//! An event log entry carries the paper's three basic elements: time, object
//! (device + location), and the object's current status.

use crate::ast::StateValue;
use crate::channel::Channel;
use crate::device::{DeviceKind, Location};
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A device attribute changed ("Door is locked").
    DeviceState {
        device: DeviceKind,
        location: Location,
        state: StateValue,
    },
    /// A channel reading ("Temperature is 86°F").
    ChannelReading {
        channel: Channel,
        location: Location,
        value: f32,
    },
    /// A discrete channel event ("Smoke alarm is beeping").
    ChannelEvent {
        channel: Channel,
        location: Location,
    },
    /// A rule fired (attributed to a platform when known).
    RuleFired { rule_id: u32 },
}

/// One event-log record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Seconds since the start of the observation window.
    pub timestamp: f64,
    pub kind: EventKind,
    /// Which platform reported it, if attributable.
    pub platform: Option<crate::platform::Platform>,
}

impl EventRecord {
    pub fn new(timestamp: f64, kind: EventKind) -> Self {
        Self {
            timestamp,
            kind,
            platform: None,
        }
    }

    pub fn with_platform(mut self, p: crate::platform::Platform) -> Self {
        self.platform = Some(p);
        self
    }

    /// Hour-of-day of the timestamp (for time-trigger matching).
    pub fn hour_of_day(&self) -> f32 {
        ((self.timestamp / 3600.0) % 24.0) as f32
    }
}

/// An ordered event log.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    records: Vec<EventRecord>,
}

impl EventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, keeping timestamps non-decreasing.
    pub fn push(&mut self, rec: EventRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                rec.timestamp >= last.timestamp,
                "event log must be appended in time order ({} < {})",
                rec.timestamp,
                last.timestamp
            );
        }
        self.records.push(rec);
    }

    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records inside a closed time window.
    pub fn window(&self, from: f64, to: f64) -> impl Iterator<Item = &EventRecord> {
        self.records
            .iter()
            .filter(move |r| r.timestamp >= from && r.timestamp <= to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_append_enforced() {
        let mut log = EventLog::new();
        log.push(EventRecord::new(1.0, EventKind::RuleFired { rule_id: 1 }));
        log.push(EventRecord::new(2.0, EventKind::RuleFired { rule_id: 2 }));
        assert_eq!(log.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_append_panics() {
        let mut log = EventLog::new();
        log.push(EventRecord::new(5.0, EventKind::RuleFired { rule_id: 1 }));
        log.push(EventRecord::new(1.0, EventKind::RuleFired { rule_id: 2 }));
    }

    #[test]
    fn windowing() {
        let mut log = EventLog::new();
        for t in 0..10 {
            log.push(EventRecord::new(
                t as f64,
                EventKind::RuleFired { rule_id: t },
            ));
        }
        assert_eq!(log.window(3.0, 6.0).count(), 4);
    }

    #[test]
    fn hour_of_day_wraps() {
        let rec = EventRecord::new(25.0 * 3600.0, EventKind::RuleFired { rule_id: 0 });
        assert!((rec.hour_of_day() - 1.0).abs() < 1e-6);
    }
}
