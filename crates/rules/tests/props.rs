//! Property-based tests for the rule substrate.

use glint_rules::correlation::{action_triggers, effective_affects};
use glint_rules::render::render_rule;
use glint_rules::{CorpusGenerator, Platform, StateValue, Trigger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated rule renders to a parsable, non-degenerate sentence.
    #[test]
    fn generated_rules_render_and_parse(seed in 0u64..500, pidx in 0usize..5) {
        let mut g = CorpusGenerator::new(seed);
        let platform = Platform::all()[pidx];
        for rule in g.generate_platform(platform, 5) {
            let text = render_rule(&rule);
            prop_assert!(text.len() > 8, "degenerate rendering: {text}");
            prop_assert!(text.ends_with('.'));
            let parsed = glint_nlp::parse_rule(&text);
            prop_assert!(
                !parsed.action.is_empty() || !parsed.trigger.is_empty(),
                "nothing parsed from: {text}"
            );
        }
    }

    /// Rendering is a pure function of the rule.
    #[test]
    fn rendering_is_deterministic(seed in 0u64..500) {
        let mut g = CorpusGenerator::new(seed);
        let rule = g.rule_for(Platform::Ifttt);
        prop_assert_eq!(render_rule(&rule), render_rule(&rule));
    }

    /// Flipping an action's polarity flips its channel effects.
    #[test]
    fn effective_affects_flips_with_polarity(didx in 0usize..37) {
        use glint_rules::{Channel, Effect};
        let device = glint_rules::DeviceKind::all()[didx % glint_rules::DeviceKind::all().len()];
        let on = effective_affects(device, StateValue::On);
        let off = effective_affects(device, StateValue::Off);
        for (c, e) in &on {
            if matches!(e, Effect::Increase | Effect::Decrease) {
                let counter = off.iter().find(|(c2, _)| c2 == c);
                if let Some((_, e2)) = counter {
                    prop_assert!(e.opposes(*e2), "{device:?}/{c:?}: {e:?} vs {e2:?}");
                }
            }
            let _ = Channel::Temperature;
        }
    }

    /// Correlation is never reflexive on voice/time-triggered rules (no
    /// action can cause a voice command or the clock).
    #[test]
    fn nothing_triggers_time_or_voice(seed in 0u64..300) {
        let mut g = CorpusGenerator::new(seed);
        let rules = g.generate_platform(Platform::Ifttt, 12);
        for a in &rules {
            for b in &rules {
                if matches!(b.trigger, Trigger::Time(_) | Trigger::Voice | Trigger::Manual) {
                    prop_assert!(
                        action_triggers(a, b).is_none(),
                        "rule {} claims to trigger a schedule/voice rule {}",
                        a.id.0,
                        b.id.0
                    );
                }
            }
        }
    }

    /// The correlation oracle is deterministic.
    #[test]
    fn correlation_is_deterministic(seed in 0u64..300) {
        let mut g = CorpusGenerator::new(seed);
        let rules = g.generate_platform(Platform::SmartThings, 8);
        for a in &rules {
            for b in &rules {
                prop_assert_eq!(action_triggers(a, b), action_triggers(a, b));
            }
        }
    }
}
