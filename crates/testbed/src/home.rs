//! The testbed home: device inventory and layout (Figure 10).

use glint_rules::{Attribute, DeviceKind, Location, StateValue};
use std::collections::HashMap;

/// One deployed device instance.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceInstance {
    pub kind: DeviceKind,
    pub location: Location,
    /// Current attribute states.
    pub state: HashMap<Attribute, StateValue>,
}

impl DeviceInstance {
    pub fn new(kind: DeviceKind, location: Location) -> Self {
        let mut state = HashMap::new();
        for &attr in kind.attributes() {
            state.insert(attr, default_state(attr));
        }
        Self {
            kind,
            location,
            state,
        }
    }

    pub fn get(&self, attr: Attribute) -> Option<StateValue> {
        self.state.get(&attr).copied()
    }

    /// Set an attribute; returns true when the value actually changed.
    pub fn set(&mut self, attr: Attribute, value: StateValue) -> bool {
        match self.state.get_mut(&attr) {
            Some(slot) if *slot != value => {
                *slot = value;
                true
            }
            Some(_) => false,
            None => false,
        }
    }
}

fn default_state(attr: Attribute) -> StateValue {
    match attr {
        Attribute::Power | Attribute::Playing | Attribute::Recording => StateValue::Off,
        Attribute::OpenClose => StateValue::Closed,
        Attribute::LockState => StateValue::Locked,
        Attribute::Mode => StateValue::Disarmed,
        Attribute::Level => StateValue::Level(50.0),
    }
}

/// The deployed home: devices plus continuous environment channels per zone.
#[derive(Clone, Debug, Default)]
pub struct Home {
    pub devices: Vec<DeviceInstance>,
}

impl Home {
    pub fn add(&mut self, kind: DeviceKind, location: Location) -> usize {
        self.devices.push(DeviceInstance::new(kind, location));
        self.devices.len() - 1
    }

    /// Find the first device of a kind at a coupled location.
    pub fn find(&self, kind: DeviceKind, location: Location) -> Option<usize> {
        self.devices
            .iter()
            .position(|d| d.kind == kind && d.location.couples_with(location))
    }

    pub fn device(&self, i: usize) -> &DeviceInstance {
        &self.devices[i]
    }

    pub fn device_mut(&mut self, i: usize) -> &mut DeviceInstance {
        &mut self.devices[i]
    }

    /// How many devices of a kind are deployed.
    pub fn count(&self, kind: DeviceKind) -> usize {
        self.devices.iter().filter(|d| d.kind == kind).count()
    }
}

/// The Figure 10 home: lights, motion/contact/temperature/presence sensors,
/// a camera, a smart button, plus the actuated devices the §4.8 scenarios
/// exercise (lock, window, AC, vacuum, TV, smoke alarm).
pub fn figure10_home() -> Home {
    use DeviceKind::*;
    use Location::*;
    let mut home = Home::default();
    // Figure 10 inventory
    home.add(Light, LivingRoom);
    home.add(Light, Bedroom);
    home.add(Light, Kitchen);
    home.add(Light, Hallway);
    home.add(MotionSensor, Hallway);
    home.add(MotionSensor, LivingRoom);
    home.add(ContactSensor, Hallway);
    home.add(TemperatureSensor, LivingRoom);
    home.add(PresenceSensor, Hallway);
    home.add(Camera, Hallway);
    home.add(Button, Bedroom);
    // devices the scenario rules actuate
    home.add(Door, Hallway);
    home.add(Lock, Hallway);
    home.add(Window, LivingRoom);
    home.add(Window, Bedroom);
    home.add(AirConditioner, House);
    home.add(Vacuum, Hallway);
    home.add(Tv, LivingRoom);
    home.add(SmokeAlarm, Kitchen);
    home.add(Speaker, Bedroom);
    home.add(Heater, Bathroom);
    home.add(Humidifier, House);
    home
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_inventory() {
        let home = figure10_home();
        assert_eq!(home.count(DeviceKind::Light), 4);
        assert_eq!(home.count(DeviceKind::MotionSensor), 2);
        assert_eq!(home.count(DeviceKind::Camera), 1);
        assert_eq!(home.count(DeviceKind::Button), 1);
        assert!(home.devices.len() >= 20);
    }

    #[test]
    fn device_defaults_and_set() {
        let mut d = DeviceInstance::new(DeviceKind::Light, Location::Bedroom);
        assert_eq!(d.get(Attribute::Power), Some(StateValue::Off));
        assert!(d.set(Attribute::Power, StateValue::On));
        assert!(
            !d.set(Attribute::Power, StateValue::On),
            "idempotent set reports no change"
        );
        assert!(
            !d.set(Attribute::OpenClose, StateValue::Open),
            "unknown attribute ignored"
        );
    }

    #[test]
    fn find_respects_location_coupling() {
        let home = figure10_home();
        // AC is house-wide: findable from any room
        assert!(home
            .find(DeviceKind::AirConditioner, Location::Bedroom)
            .is_some());
        // hallway motion sensor is not in the bedroom
        let hallway_motion = home.find(DeviceKind::MotionSensor, Location::Hallway);
        assert!(hallway_motion.is_some());
    }
}
