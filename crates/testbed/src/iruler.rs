//! iRuler-style bounded model checking baseline (§4.8.2's efficiency
//! comparison target).
//!
//! iRuler feeds rule interactions to an SMT solver; this stand-in performs
//! explicit bounded search over abstract device-state vectors — the same
//! exhaustive-exploration regime, with the same scaling pathology the paper
//! highlights: state count grows combinatorially with rule count and search
//! depth, while Glint's learned detector stays O(graph size).

use glint_rules::{Action, DeviceKind, Location, Rule, StateValue, Trigger};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Abstract home state: device/location → discrete state.
type AbstractState = BTreeMap<(DeviceKind, Location), StateValue>;

/// Result of a bounded check.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Distinct abstract states explored.
    pub explored_states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// Detected violations (conflicting writes / loops), as rule-id pairs.
    pub violations: Vec<(u32, u32)>,
    /// Whether the search hit the depth bound before exhausting the space.
    pub truncated: bool,
}

impl CheckOutcome {
    pub fn is_vulnerable(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Bounded explicit-state checker.
pub struct IRulerChecker {
    /// Maximum rule-firing chain length (the paper's "search depth").
    pub max_depth: usize,
    /// State-count budget (so pathological cases terminate measurably).
    pub max_states: usize,
}

impl Default for IRulerChecker {
    fn default() -> Self {
        Self {
            max_depth: 6,
            max_states: 200_000,
        }
    }
}

fn state_key(s: &AbstractState, depth: usize) -> String {
    let mut k = format!("d{depth}|");
    for ((d, l), v) in s {
        k.push_str(&format!("{d:?}@{l:?}={v:?};"));
    }
    k
}

/// Can this rule's trigger fire in the abstract state? Device-state triggers
/// are checked against the state; environmental/time/voice triggers are
/// over-approximated as always-possible (sound for threat finding).
fn may_fire(rule: &Rule, state: &AbstractState) -> bool {
    match &rule.trigger {
        Trigger::DeviceState {
            device,
            location,
            state: want,
            ..
        } => state
            .get(&(*device, *location))
            .map(|have| have == want)
            .unwrap_or(true),
        _ => true,
    }
}

fn apply(rule: &Rule, state: &AbstractState) -> AbstractState {
    let mut next = state.clone();
    for a in &rule.actions {
        if let Action::SetState {
            device,
            location,
            state: v,
            ..
        } = a
        {
            next.insert((*device, *location), *v);
        }
    }
    next
}

impl IRulerChecker {
    /// Exhaustively explore rule-firing chains from the empty state.
    pub fn check(&self, rules: &[Rule]) -> CheckOutcome {
        let mut outcome = CheckOutcome {
            explored_states: 0,
            transitions: 0,
            violations: Vec::new(),
            truncated: false,
        };
        let mut seen: HashSet<String> = HashSet::new();
        // frontier: (state, depth, last write per device: rule id + value)
        type Writes = BTreeMap<(DeviceKind, Location), (u32, StateValue)>;
        let mut queue: VecDeque<(AbstractState, usize, Writes)> = VecDeque::new();
        queue.push_back((AbstractState::new(), 0, Writes::new()));
        let mut violations: HashSet<(u32, u32)> = HashSet::new();
        while let Some((state, depth, writes)) = queue.pop_front() {
            if outcome.explored_states >= self.max_states {
                outcome.truncated = true;
                break;
            }
            let key = state_key(&state, depth);
            if !seen.insert(key) {
                continue;
            }
            outcome.explored_states += 1;
            if depth >= self.max_depth {
                outcome.truncated = true;
                continue;
            }
            for rule in rules {
                if !may_fire(rule, &state) {
                    continue;
                }
                outcome.transitions += 1;
                // violation: this rule overwrites another rule's write with
                // an opposing value along the same chain
                let mut new_writes = writes.clone();
                for a in &rule.actions {
                    if let Action::SetState {
                        device,
                        location,
                        state: v,
                        ..
                    } = a
                    {
                        for ((d2, l2), (owner, prev)) in &writes {
                            if *d2 == *device
                                && l2.couples_with(*location)
                                && prev.opposes(*v)
                                && *owner != rule.id.0
                            {
                                let pair = if *owner < rule.id.0 {
                                    (*owner, rule.id.0)
                                } else {
                                    (rule.id.0, *owner)
                                };
                                violations.insert(pair);
                            }
                        }
                        new_writes.insert((*device, *location), (rule.id.0, *v));
                    }
                }
                queue.push_back((apply(rule, &state), depth + 1, new_writes));
            }
        }
        outcome.violations = violations.into_iter().collect();
        outcome.violations.sort_unstable();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::scenarios::{table1_rules, table4_settings};

    #[test]
    fn finds_the_window_conflict_in_the_running_example() {
        let rules = table1_rules();
        let outcome = IRulerChecker::default().check(&rules);
        // rules 5 (close windows) and 6 (open windows) conflict on the window
        assert!(
            outcome.violations.iter().any(|&(a, b)| (a, b) == (5, 6)),
            "missing 5/6 window conflict: {:?}",
            outcome.violations
        );
    }

    #[test]
    fn benign_pairs_produce_no_violations() {
        let rules = table4_settings();
        let pair: Vec<Rule> = rules
            .iter()
            .filter(|r| [105, 109].contains(&r.id.0))
            .cloned()
            .collect();
        let outcome = IRulerChecker::default().check(&pair);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn state_explosion_grows_with_rule_count() {
        let rules = table1_rules();
        let small = IRulerChecker {
            max_depth: 4,
            max_states: 1_000_000,
        }
        .check(&rules[..3]);
        let large = IRulerChecker {
            max_depth: 4,
            max_states: 1_000_000,
        }
        .check(&rules);
        assert!(
            large.explored_states > small.explored_states * 2,
            "no blow-up: {} vs {}",
            large.explored_states,
            small.explored_states
        );
    }

    #[test]
    fn depth_bound_truncates() {
        let rules = table1_rules();
        let shallow = IRulerChecker {
            max_depth: 1,
            max_states: 1_000_000,
        }
        .check(&rules);
        assert!(shallow.truncated);
    }
}
