//! # glint-testbed
//!
//! The real-life testbed substitute (§4.8): a discrete-event smart-home
//! simulator with the Figure 10 device layout, a rule-execution engine that
//! writes event logs, the five attack injectors of §4.8.1, the HAWatcher
//! baseline, and the BCT/CCT test-set harness behind Figure 11.
//!
//! The paper collects 1,813 event logs from a volunteer's house over a week;
//! this crate produces the same artifact — timestamped device/rule events —
//! from a seeded simulation, so every Figure 11 number is reproducible.

pub mod attack;
pub mod churn;
pub mod harness;
pub mod hawatcher;
pub mod home;
pub mod iruler;
pub mod sim;

pub use attack::AttackKind;
pub use churn::{churn_trace, ChurnConfig, ChurnGenerator, ChurnHarness, ScaleCounters};
pub use harness::{TestSetBuilder, ThreatComplexity};
pub use hawatcher::HaWatcher;
pub use home::{figure10_home, DeviceInstance, Home};
pub use sim::{SimConfig, Simulator};
