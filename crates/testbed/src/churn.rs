//! Deterministic multi-tenant rule-churn load generator and harness.
//!
//! Simulates N×10⁵ homes deploying and retiring automation rules at Table 2
//! platform proportions, driving the incremental pipeline's ingest→verdict
//! path one delta at a time. Everything here is a pure function of the seed:
//! the churn trace serializes byte-identically across runs and thread
//! configurations, and the harness counters are exactly reproducible — the
//! wall-clock/RSS measurement lives in `glint-bench` (`micro_scale`), never
//! here.
//!
//! Flow per churn event: [`ChurnGenerator`] emits a [`RuleDelta`] →
//! [`IncrementalPipeline::ingest`] re-mines the home's vocabulary
//! neighborhood, rebuilds that one home graph, forwards the delta to the
//! [`GlintDetector`], and returns the verdict. Periodically the harness
//! refreshes dirty-home embeddings and persists touched homes into a
//! [`ShardedStore`], exercising the live shard-delta path end to end.

use glint_core::detector::Degradation;
use glint_core::drift::DriftDetector;
use glint_core::incremental::{DeltaError, IncrementalPipeline, RuleChange, RuleDelta};
use glint_core::GlintDetector;
use glint_gnn::batch::PreparedGraph;
use glint_gnn::models::{Itgnn, ItgnnConfig};
use glint_gnn::trainer::ContrastiveTrainer;
use glint_graph::shard::ShardedStore;
use glint_rules::corpus::CorpusGenerator;
use glint_rules::{Action, Platform, Rule, RuleId, Trigger};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Feature dimension of [`churn_features`].
pub const CHURN_FEATURE_DIM: usize = 8;

/// Cheap structural featurizer for scale runs: 8 dims derived from the rule
/// AST (no NLP embedding — at 10⁵ homes the 300-d text features would
/// dominate RSS without changing what the harness measures). Deterministic
/// and platform-uniform, so every graph is schema-compatible.
pub fn churn_features(rule: &Rule) -> Vec<f32> {
    let trigger_class = match &rule.trigger {
        Trigger::DeviceState { .. } => 1.0,
        Trigger::ChannelThreshold { .. } => 2.0,
        Trigger::ChannelRange { .. } => 3.0,
        Trigger::ChannelEvent { .. } => 4.0,
        Trigger::Time(_) => 5.0,
        Trigger::Voice => 6.0,
        Trigger::Manual => 7.0,
    };
    let n_notify = rule
        .actions
        .iter()
        .filter(|a| matches!(a, Action::Notify | Action::Snapshot { .. }))
        .count() as f32;
    let actuated = rule.actuated_devices();
    let n_channels: usize = actuated.iter().map(|(d, _)| d.affects().len()).sum();
    vec![
        1.0,
        trigger_class,
        rule.trigger.channel().map_or(0.0, |c| c as u8 as f32 + 1.0),
        rule.conditions.len() as f32,
        rule.actions.len() as f32,
        actuated.len() as f32,
        n_notify,
        (n_channels as f32).sqrt(),
    ]
}

/// Scale/churn knobs. Defaults are the committed-benchmark shape; the CI
/// smoke stage runs the same config at `homes = 1_000`.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Simulated homes (tenants).
    pub homes: u64,
    /// Churn deltas after bootstrap (each one is a full ingest→verdict).
    pub deltas: u64,
    /// Rules deployed per home during bootstrap.
    pub bootstrap_rules: usize,
    /// A home at this size only sheds rules.
    pub max_rules_per_home: usize,
    /// Refresh dirty-home embeddings every this many churn deltas.
    pub refresh_every: u64,
    /// Persist the touched home's shard every this many churn deltas
    /// (0 disables persistence).
    pub persist_every: u64,
    /// Where shards go when `persist_every > 0`.
    pub shard_dir: Option<PathBuf>,
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            homes: 100_000,
            deltas: 20_000,
            bootstrap_rules: 3,
            max_rules_per_home: 8,
            refresh_every: 256,
            persist_every: 0,
            shard_dir: None,
            seed: 0x5ca1e,
        }
    }
}

/// One churn event: the step index and the delta it carries.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ChurnEvent {
    pub step: u64,
    pub delta: RuleDelta,
}

/// Streaming churn-event source. Emits the bootstrap adds (home-major),
/// then `deltas` Table-2-proportioned add/remove events. Same seed + config
/// ⇒ the identical event sequence, byte for byte.
pub struct ChurnGenerator {
    cfg: ChurnConfig,
    corpus: CorpusGenerator,
    rng: StdRng,
    /// home → live rule ids (sorted ascending by construction).
    live: BTreeMap<u64, Vec<u32>>,
    emitted: u64,
}

impl ChurnGenerator {
    pub fn new(cfg: ChurnConfig) -> Self {
        let corpus = CorpusGenerator::new(cfg.seed);
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        Self {
            cfg,
            corpus,
            rng,
            live: BTreeMap::new(),
            emitted: 0,
        }
    }

    /// Events in the bootstrap phase (all adds).
    pub fn bootstrap_len(&self) -> u64 {
        self.cfg.homes * self.cfg.bootstrap_rules as u64
    }

    /// Total events this generator will emit.
    pub fn total_len(&self) -> u64 {
        self.bootstrap_len() + self.cfg.deltas
    }

    /// Sample a platform at Table 2 proportions (IFTTT dominates at ~96%,
    /// exactly as in the paper's corpus).
    fn sample_platform(&mut self) -> Platform {
        let total: u64 = Platform::all()
            .iter()
            .map(|p| p.paper_rule_count() as u64)
            .sum();
        let mut pick = self.rng.gen_range(0..total);
        for &p in Platform::all() {
            let w = p.paper_rule_count() as u64;
            if pick < w {
                return p;
            }
            pick -= w;
        }
        Platform::Ifttt
    }

    fn next_add(&mut self, home: u64) -> RuleDelta {
        let platform = self.sample_platform();
        let rule = self.corpus.rule_for(platform);
        self.live.entry(home).or_default().push(rule.id.0);
        RuleDelta {
            home,
            change: RuleChange::Add(rule),
        }
    }

    fn next_remove(&mut self, home: u64) -> Option<RuleDelta> {
        let ids = self.live.get_mut(&home)?;
        if ids.is_empty() {
            return None;
        }
        let at = self.rng.gen_range(0..ids.len());
        let id = ids.remove(at);
        Some(RuleDelta {
            home,
            change: RuleChange::Remove(RuleId(id)),
        })
    }
}

impl Iterator for ChurnGenerator {
    type Item = ChurnEvent;

    fn next(&mut self) -> Option<ChurnEvent> {
        if self.emitted >= self.total_len() {
            return None;
        }
        let step = self.emitted;
        let delta = if step < self.bootstrap_len() {
            // bootstrap: home-major round of adds
            let home = step / self.cfg.bootstrap_rules as u64;
            self.next_add(home)
        } else {
            // churn: pick a home; grow when small, shed when full
            let home = self.rng.gen_range(0..self.cfg.homes);
            let n_live = self.live.get(&home).map_or(0, Vec::len);
            let add = if n_live == 0 {
                true
            } else if n_live >= self.cfg.max_rules_per_home {
                false
            } else {
                self.rng.gen_bool(0.55)
            };
            if add {
                self.next_add(home)
            } else {
                match self.next_remove(home) {
                    Some(d) => d,
                    None => self.next_add(home),
                }
            }
        };
        self.emitted += 1;
        Some(ChurnEvent { step, delta })
    }
}

/// Collect the full event trace (small configs only — the trace holds every
/// generated rule). The determinism contract is on the serialized JSON of
/// this value.
pub fn churn_trace(cfg: ChurnConfig) -> Vec<ChurnEvent> {
    ChurnGenerator::new(cfg).collect()
}

/// Reproducible work counters for one harness run. Serialized into
/// `BENCH_scale.json`; same seed + config ⇒ the identical counter set.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ScaleCounters {
    pub homes: u64,
    pub bootstrap_deltas: u64,
    pub churn_deltas: u64,
    /// Verdicts returned on the ingest path (one per churn delta).
    pub verdicts: u64,
    pub threats: u64,
    pub degraded_verdicts: u64,
    /// Ordered pairs re-mined across the run (vocabulary-neighborhood
    /// scoped).
    pub remined_pairs: u64,
    /// Ordered pairs a from-scratch batch rebuild would have mined instead.
    pub full_mine_pairs: u64,
    /// Dirty home graphs re-embedded across all refreshes.
    pub reembedded: u64,
    /// Home graphs a full re-embed would have touched instead.
    pub full_reembed: u64,
    pub graphs_rebuilt: u64,
    pub shards_persisted: u64,
    /// Live rules across all homes at the end of the run.
    pub final_rules: u64,
    /// Largest live rule set of any single home.
    pub max_home_rules: u64,
}

/// The end-to-end churn harness: generator + incremental pipeline +
/// detector (+ optional sharded persistence), stepped one delta at a time
/// so the bench can time each ingest.
pub struct ChurnHarness {
    generator: ChurnGenerator,
    pipeline: IncrementalPipeline,
    detector: GlintDetector<Itgnn, Itgnn>,
    embedder: Itgnn,
    store: Option<ShardedStore>,
    counters: ScaleCounters,
    refresh_every: u64,
    persist_every: u64,
    churn_seen: u64,
    bootstrapped: bool,
}

impl ChurnHarness {
    /// Build the harness: tiny deterministic ITGNN models (8-d structural
    /// features, all platforms in the schema) and a drift detector fitted
    /// on a handful of warm-up graphs from the same generator seed.
    pub fn new(cfg: ChurnConfig) -> Result<Self, DeltaError> {
        let types: Vec<(Platform, usize)> = Platform::all()
            .iter()
            .map(|&p| (p, CHURN_FEATURE_DIM))
            .collect();
        let model_cfg = ItgnnConfig {
            hidden: 8,
            embed: 8,
            n_scales: 1,
            seed: cfg.seed,
            ..Default::default()
        };
        let classifier = Itgnn::new(&types, model_cfg.clone());
        let embedder = Itgnn::new(&types, model_cfg.clone());
        // seeded init is deterministic, so this is a bitwise clone of
        // `embedder` for the detector's own copy
        let detector_embedder = Itgnn::new(&types, model_cfg);
        // warm-up: a few homes' worth of rules from an identically seeded
        // generator provide the drift detector's reference distribution
        let warm_cfg = ChurnConfig {
            homes: 8,
            deltas: 0,
            shard_dir: None,
            persist_every: 0,
            ..cfg.clone()
        };
        let mut warm = IncrementalPipeline::new();
        for ev in ChurnGenerator::new(warm_cfg) {
            warm.apply(&ev.delta, &churn_features)?;
        }
        let warm_graphs: Vec<PreparedGraph> = warm
            .homes()
            .filter_map(|(_, s)| s.graph())
            .map(PreparedGraph::from_graph)
            .collect();
        let embeddings = ContrastiveTrainer::embed_all(&embedder, &warm_graphs);
        let labels = vec![0usize; warm_graphs.len()];
        let drift = DriftDetector::fit(&embeddings, &labels);
        let detector = GlintDetector::new(Vec::new(), classifier, detector_embedder, drift);
        let store = match (&cfg.shard_dir, cfg.persist_every) {
            (Some(dir), n) if n > 0 => Some(ShardedStore::open_or_create(dir)?),
            _ => None,
        };
        let counters = ScaleCounters {
            homes: cfg.homes,
            ..ScaleCounters::default()
        };
        Ok(Self {
            refresh_every: cfg.refresh_every.max(1),
            persist_every: cfg.persist_every,
            generator: ChurnGenerator::new(cfg),
            pipeline: IncrementalPipeline::new(),
            detector,
            embedder,
            store,
            counters,
            churn_seen: 0,
            bootstrapped: false,
        })
    }

    pub fn counters(&self) -> &ScaleCounters {
        &self.counters
    }

    pub fn pipeline(&self) -> &IncrementalPipeline {
        &self.pipeline
    }

    /// Deltas remaining after bootstrap (for progress/timing loops).
    pub fn churn_len(&self) -> u64 {
        self.generator.total_len() - self.generator.bootstrap_len()
    }

    /// Apply all bootstrap adds (plain pipeline applies — the deployment
    /// backlog) and bring embeddings current with one refresh.
    pub fn bootstrap(&mut self) -> Result<(), DeltaError> {
        let n = self.generator.bootstrap_len();
        for _ in 0..n {
            let Some(ev) = self.generator.next() else {
                break;
            };
            self.pipeline.apply(&ev.delta, &churn_features)?;
            self.detector.apply_delta(&ev.delta);
            self.counters.bootstrap_deltas += 1;
        }
        self.pipeline.refresh(&self.embedder);
        self.bootstrapped = true;
        Ok(())
    }

    /// Run one churn delta through the full ingest→verdict path. Returns
    /// `false` when the generator is exhausted.
    pub fn tick(&mut self) -> Result<bool, DeltaError> {
        if !self.bootstrapped {
            self.bootstrap()?;
        }
        let Some(ev) = self.generator.next() else {
            return Ok(false);
        };
        let outcome = self
            .pipeline
            .ingest(&ev.delta, &mut self.detector, &churn_features)?;
        self.counters.churn_deltas += 1;
        self.counters.verdicts += 1;
        if outcome.detection.is_threat {
            self.counters.threats += 1;
        }
        if !matches!(outcome.detection.degradation, Degradation::None) {
            self.counters.degraded_verdicts += 1;
        }
        self.churn_seen += 1;
        if self.churn_seen.is_multiple_of(self.refresh_every) {
            self.pipeline.refresh(&self.embedder);
        }
        if let Some(store) = &mut self.store {
            if self.persist_every > 0 && self.churn_seen.is_multiple_of(self.persist_every) {
                self.pipeline.persist_home(store, ev.delta.home)?;
                self.counters.shards_persisted += 1;
            }
        }
        Ok(true)
    }

    /// Drain the generator (bootstrap + every churn delta), then finalize.
    pub fn run(&mut self) -> Result<ScaleCounters, DeltaError> {
        while self.tick()? {}
        Ok(self.finish())
    }

    /// Final refresh + counter rollup.
    pub fn finish(&mut self) -> ScaleCounters {
        self.pipeline.refresh(&self.embedder);
        let stats = self.pipeline.stats();
        self.counters.remined_pairs = stats.remined_pairs;
        self.counters.full_mine_pairs = stats.full_mine_pairs;
        self.counters.reembedded = stats.reembedded;
        self.counters.full_reembed = stats.full_reembed;
        self.counters.graphs_rebuilt = stats.graphs_rebuilt;
        self.counters.final_rules = self
            .pipeline
            .homes()
            .map(|(_, s)| s.rules().len() as u64)
            .sum();
        self.counters.max_home_rules = self
            .pipeline
            .homes()
            .map(|(_, s)| s.rules().len() as u64)
            .max()
            .unwrap_or(0);
        self.counters.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnConfig {
        ChurnConfig {
            homes: 24,
            deltas: 120,
            refresh_every: 16,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn trace_is_seed_deterministic() {
        let a = churn_trace(tiny());
        let b = churn_trace(tiny());
        assert_eq!(a, b);
        let c = churn_trace(ChurnConfig {
            seed: 0xdead,
            ..tiny()
        });
        assert_ne!(a, c, "different seed must vary the trace");
    }

    #[test]
    fn platform_mix_is_ifttt_dominated() {
        // Table 2: IFTTT is ~96.5% of the corpus
        let trace = churn_trace(ChurnConfig {
            homes: 200,
            deltas: 0,
            ..tiny()
        });
        let ifttt = trace
            .iter()
            .filter(
                |e| matches!(&e.delta.change, RuleChange::Add(r) if r.platform == Platform::Ifttt),
            )
            .count();
        let total = trace.len();
        assert!(
            ifttt as f64 / total as f64 > 0.85,
            "IFTTT share {ifttt}/{total} far from Table 2"
        );
    }

    #[test]
    fn harness_counters_reproducible_and_incremental_wins() {
        let mut h1 = ChurnHarness::new(tiny()).unwrap();
        let c1 = h1.run().unwrap();
        let mut h2 = ChurnHarness::new(tiny()).unwrap();
        let c2 = h2.run().unwrap();
        assert_eq!(c1, c2, "same seed must reproduce every counter");
        assert_eq!(c1.churn_deltas, 120);
        assert_eq!(c1.verdicts, c1.churn_deltas);
        // the scale ratchet: incremental work strictly below batch work
        assert!(c1.remined_pairs < c1.full_mine_pairs, "{c1:?}");
        assert!(c1.reembedded < c1.full_reembed, "{c1:?}");
    }

    #[test]
    fn removals_happen_and_homes_stay_bounded() {
        let cfg = ChurnConfig {
            homes: 6,
            deltas: 400,
            max_rules_per_home: 5,
            ..tiny()
        };
        let trace = churn_trace(cfg.clone());
        assert!(trace
            .iter()
            .any(|e| matches!(e.delta.change, RuleChange::Remove(_))));
        let mut h = ChurnHarness::new(cfg.clone()).unwrap();
        let c = h.run().unwrap();
        assert!(c.max_home_rules <= cfg.max_rules_per_home as u64);
    }
}
