//! The five §4.8.1 attack/fault injectors, applied to simulated event logs:
//! targeted compromise (fake commands, stealthy commands), interaction abuse
//! (fake events, event losses), and misconfiguration (command failures).

use glint_rules::event::{EventKind, EventLog, EventRecord};
use glint_rules::{Channel, DeviceKind, Location, StateValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attack taxonomy of §4.8.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Targeted compromise: a command the user never issued ("manually
    /// turning off lights during normal operation").
    FakeCommand,
    /// Targeted compromise: a command whose side effects trip sensors
    /// ("manually starting a robot vacuum to trigger motion sensors").
    StealthyCommand,
    /// Interaction abuse: a sensor event that never physically happened.
    FakeEvent,
    /// Interaction abuse: real events dropped from the log.
    EventLoss,
    /// Misconfiguration: a rule fires but its command never lands.
    CommandFailure,
}

impl AttackKind {
    pub fn all() -> &'static [AttackKind] {
        &[
            AttackKind::FakeCommand,
            AttackKind::StealthyCommand,
            AttackKind::FakeEvent,
            AttackKind::EventLoss,
            AttackKind::CommandFailure,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            AttackKind::FakeCommand => "fake command",
            AttackKind::StealthyCommand => "stealthy command",
            AttackKind::FakeEvent => "fake event",
            AttackKind::EventLoss => "event loss",
            AttackKind::CommandFailure => "command failure",
        }
    }
}

/// Inject one attack into a log, returning the tampered log. Timestamps stay
/// ordered; injections land mid-log at a seeded position.
pub fn inject(log: &EventLog, kind: AttackKind, seed: u64) -> EventLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let records = log.records();
    if records.is_empty() {
        return log.clone();
    }
    let pivot = rng.gen_range(0..records.len());
    let t = records[pivot].timestamp;
    let mut out = EventLog::new();
    match kind {
        AttackKind::FakeCommand => {
            // unsolicited light-off at pivot time, no RuleFired before it
            for (i, r) in records.iter().enumerate() {
                out.push(r.clone());
                if i == pivot {
                    out.push(EventRecord::new(
                        t,
                        EventKind::DeviceState {
                            device: DeviceKind::Light,
                            location: Location::LivingRoom,
                            state: StateValue::Off,
                        },
                    ));
                }
            }
        }
        AttackKind::StealthyCommand => {
            // vacuum start + the motion it physically induces
            for (i, r) in records.iter().enumerate() {
                out.push(r.clone());
                if i == pivot {
                    out.push(EventRecord::new(
                        t,
                        EventKind::DeviceState {
                            device: DeviceKind::Vacuum,
                            location: Location::Hallway,
                            state: StateValue::On,
                        },
                    ));
                    out.push(EventRecord::new(
                        t + 5.0_f64.min(next_gap(records, i)),
                        EventKind::ChannelEvent {
                            channel: Channel::Motion,
                            location: Location::Hallway,
                        },
                    ));
                }
            }
        }
        AttackKind::FakeEvent => {
            for (i, r) in records.iter().enumerate() {
                out.push(r.clone());
                if i == pivot {
                    out.push(EventRecord::new(
                        t,
                        EventKind::ChannelEvent {
                            channel: Channel::Smoke,
                            location: Location::Kitchen,
                        },
                    ));
                }
            }
        }
        AttackKind::EventLoss => {
            // drop a contiguous run of device-state events
            let drop_from = pivot;
            let drop_to = (pivot + 3).min(records.len());
            for (i, r) in records.iter().enumerate() {
                let dropped = (drop_from..drop_to).contains(&i)
                    && matches!(r.kind, EventKind::DeviceState { .. });
                if !dropped {
                    out.push(r.clone());
                }
            }
        }
        AttackKind::CommandFailure => {
            // a RuleFired whose consequent device events vanish: pick a
            // RuleFired record (seeded) and suppress the device events that
            // follow it within 10 s
            let fired: Vec<usize> = records
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r.kind, EventKind::RuleFired { .. }))
                .map(|(i, _)| i)
                .collect();
            if fired.is_empty() {
                return log.clone();
            }
            let target = fired[rng.gen_range(0..fired.len())];
            let suppress_until = records[target].timestamp + 10.0;
            for (i, r) in records.iter().enumerate() {
                let suppressed = i > target
                    && r.timestamp <= suppress_until
                    && matches!(r.kind, EventKind::DeviceState { .. });
                if !suppressed {
                    out.push(r.clone());
                }
            }
        }
    }
    out
}

fn next_gap(records: &[EventRecord], i: usize) -> f64 {
    records
        .get(i + 1)
        .map(|r| (r.timestamp - records[i].timestamp).max(0.0))
        .unwrap_or(5.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_log() -> EventLog {
        let mut log = EventLog::new();
        for k in 0..20 {
            let t = k as f64 * 10.0;
            if k % 3 == 0 {
                log.push(EventRecord::new(t, EventKind::RuleFired { rule_id: k }));
            } else {
                log.push(EventRecord::new(
                    t,
                    EventKind::DeviceState {
                        device: DeviceKind::Light,
                        location: Location::Bedroom,
                        state: if k % 2 == 0 {
                            StateValue::On
                        } else {
                            StateValue::Off
                        },
                    },
                ));
            }
        }
        log
    }

    #[test]
    fn fake_command_adds_unsolicited_state_change() {
        let log = base_log();
        let attacked = inject(&log, AttackKind::FakeCommand, 1);
        assert_eq!(attacked.len(), log.len() + 1);
    }

    #[test]
    fn stealthy_command_adds_vacuum_and_motion() {
        let log = base_log();
        let attacked = inject(&log, AttackKind::StealthyCommand, 2);
        let vacuum = attacked.records().iter().any(|r| {
            matches!(
                r.kind,
                EventKind::DeviceState {
                    device: DeviceKind::Vacuum,
                    ..
                }
            )
        });
        let motion = attacked.records().iter().any(|r| {
            matches!(
                r.kind,
                EventKind::ChannelEvent {
                    channel: Channel::Motion,
                    ..
                }
            )
        });
        assert!(vacuum && motion);
    }

    #[test]
    fn event_loss_removes_records() {
        let log = base_log();
        let attacked = inject(&log, AttackKind::EventLoss, 3);
        assert!(attacked.len() < log.len());
    }

    #[test]
    fn command_failure_keeps_rule_fired_but_drops_consequences() {
        let mut log = EventLog::new();
        log.push(EventRecord::new(0.0, EventKind::RuleFired { rule_id: 1 }));
        log.push(EventRecord::new(
            1.0,
            EventKind::DeviceState {
                device: DeviceKind::Window,
                location: Location::House,
                state: StateValue::Open,
            },
        ));
        let attacked = inject(&log, AttackKind::CommandFailure, 4);
        let has_fired = attacked
            .records()
            .iter()
            .any(|r| matches!(r.kind, EventKind::RuleFired { .. }));
        let has_device = attacked
            .records()
            .iter()
            .any(|r| matches!(r.kind, EventKind::DeviceState { .. }));
        assert!(has_fired && !has_device, "{:?}", attacked.records());
    }

    #[test]
    fn all_attacks_preserve_time_order() {
        let log = base_log();
        for &k in AttackKind::all() {
            let attacked = inject(&log, k, 7);
            let times: Vec<f64> = attacked.records().iter().map(|r| r.timestamp).collect();
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "{k:?} broke ordering"
            );
        }
    }
}
