//! HAWatcher baseline (Fu et al., USENIX Sec '21): mine binary event
//! correlations from training logs, then flag runtime inconsistencies.
//!
//! Faithful to the comparison protocol of §4.8.1: HAWatcher only covers
//! *binary* short-window correlations; for the threat types it cannot
//! express (goal conflict, action revert, condition bypass — the
//! complex-correlation cases), the paper has it answer by a Bernoulli(0.5)
//! coin, which we reproduce.

use glint_rules::event::{EventKind, EventLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A mined binary correlation: antecedent event key → consequent event key
/// expected within `window` seconds, with observed confidence.
#[derive(Clone, Debug)]
pub struct Correlation {
    pub antecedent: String,
    pub consequent: String,
    pub confidence: f64,
    pub support: usize,
}

/// Discretized key of an event (device+state or channel event).
fn event_key(kind: &EventKind) -> Option<String> {
    match kind {
        EventKind::DeviceState {
            device,
            location,
            state,
        } => Some(format!("dev:{device:?}@{location:?}={state:?}")),
        EventKind::ChannelEvent { channel, location } => {
            Some(format!("chan:{channel:?}@{location:?}"))
        }
        _ => None,
    }
}

/// The HAWatcher-style detector.
pub struct HaWatcher {
    pub window: f64,
    pub min_confidence: f64,
    pub min_support: usize,
    correlations: Vec<Correlation>,
    /// Keys seen in training (events outside the vocabulary are suspicious).
    known_keys: HashMap<String, usize>,
    rng_seed: u64,
}

impl HaWatcher {
    pub fn new() -> Self {
        Self {
            window: 120.0,
            min_confidence: 0.8,
            min_support: 3,
            correlations: Vec::new(),
            known_keys: HashMap::new(),
            rng_seed: 0,
        }
    }

    /// Mine correlations from a clean training log (the paper's "21 days of
    /// training" phase).
    pub fn train(&mut self, log: &EventLog) {
        let events: Vec<(f64, String)> = log
            .records()
            .iter()
            .filter_map(|r| event_key(&r.kind).map(|k| (r.timestamp, k)))
            .collect();
        let mut antecedent_count: HashMap<String, usize> = HashMap::new();
        let mut pair_count: HashMap<(String, String), usize> = HashMap::new();
        for (i, (t, a)) in events.iter().enumerate() {
            *antecedent_count.entry(a.clone()).or_default() += 1;
            *self.known_keys.entry(a.clone()).or_default() += 1;
            let mut seen_after: Vec<String> = Vec::new();
            for (t2, b) in events.iter().skip(i + 1) {
                if *t2 - *t > self.window {
                    break;
                }
                if b != a && !seen_after.contains(b) {
                    seen_after.push(b.clone());
                    *pair_count.entry((a.clone(), b.clone())).or_default() += 1;
                }
            }
        }
        self.correlations = pair_count
            .into_iter()
            .filter_map(|((a, b), n)| {
                let total = antecedent_count[&a];
                let confidence = n as f64 / total as f64;
                (n >= self.min_support && confidence >= self.min_confidence).then_some(
                    Correlation {
                        antecedent: a,
                        consequent: b,
                        confidence,
                        support: n,
                    },
                )
            })
            .collect();
        self.correlations
            .sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
    }

    pub fn correlations(&self) -> &[Correlation] {
        &self.correlations
    }

    /// Check a runtime log window: anomalous iff some mined correlation is
    /// violated (antecedent without consequent) or an unknown event key
    /// appears. Returns true when a threat/anomaly is reported.
    pub fn check(&self, log: &EventLog) -> bool {
        let events: Vec<(f64, String)> = log
            .records()
            .iter()
            .filter_map(|r| event_key(&r.kind).map(|k| (r.timestamp, k)))
            .collect();
        // unknown vocabulary
        if events.iter().any(|(_, k)| !self.known_keys.contains_key(k)) {
            return true;
        }
        // violated correlations
        for (i, (t, a)) in events.iter().enumerate() {
            for c in self.correlations.iter().filter(|c| &c.antecedent == a) {
                let satisfied = events
                    .iter()
                    .skip(i + 1)
                    .take_while(|(t2, _)| *t2 - *t <= self.window)
                    .any(|(_, b)| *b == c.consequent);
                if !satisfied {
                    return true;
                }
            }
        }
        false
    }

    /// The §4.8.1 protocol for threat types outside HAWatcher's model:
    /// answer by a fair coin (Bernoulli 0.5), seeded per case.
    pub fn coin_flip_verdict(&self, case_id: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(self.rng_seed ^ case_id.wrapping_mul(0x9e37_79b9));
        rng.gen_bool(0.5)
    }
}

impl Default for HaWatcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glint_rules::event::EventRecord;
    use glint_rules::{Channel, DeviceKind, Location, StateValue};

    /// Training log with a reliable "motion → light on" correlation.
    fn train_log(repeats: usize) -> EventLog {
        let mut log = EventLog::new();
        for k in 0..repeats {
            let t = k as f64 * 600.0;
            log.push(EventRecord::new(
                t,
                EventKind::ChannelEvent {
                    channel: Channel::Motion,
                    location: Location::Hallway,
                },
            ));
            log.push(EventRecord::new(
                t + 5.0,
                EventKind::DeviceState {
                    device: DeviceKind::Light,
                    location: Location::Hallway,
                    state: StateValue::On,
                },
            ));
        }
        log
    }

    #[test]
    fn mines_the_motion_light_correlation() {
        let mut hw = HaWatcher::new();
        hw.train(&train_log(10));
        assert!(
            hw.correlations()
                .iter()
                .any(|c| c.antecedent.contains("Motion") && c.consequent.contains("Light")),
            "{:?}",
            hw.correlations()
        );
    }

    #[test]
    fn consistent_runtime_log_passes() {
        let mut hw = HaWatcher::new();
        hw.train(&train_log(10));
        assert!(!hw.check(&train_log(2)));
    }

    #[test]
    fn violated_correlation_is_flagged() {
        let mut hw = HaWatcher::new();
        hw.train(&train_log(10));
        // motion without the expected light-on
        let mut bad = EventLog::new();
        bad.push(EventRecord::new(
            0.0,
            EventKind::ChannelEvent {
                channel: Channel::Motion,
                location: Location::Hallway,
            },
        ));
        assert!(hw.check(&bad));
    }

    #[test]
    fn unknown_event_is_flagged() {
        let mut hw = HaWatcher::new();
        hw.train(&train_log(10));
        let mut novel = train_log(1);
        novel.push(EventRecord::new(
            1e6,
            EventKind::DeviceState {
                device: DeviceKind::Sprinkler,
                location: Location::Garden,
                state: StateValue::On,
            },
        ));
        assert!(hw.check(&novel));
    }

    #[test]
    fn coin_flip_is_deterministic_per_case() {
        let hw = HaWatcher::new();
        assert_eq!(hw.coin_flip_verdict(42), hw.coin_flip_verdict(42));
        // and roughly fair
        let heads = (0..1000).filter(|&i| hw.coin_flip_verdict(i)).count();
        assert!((400..600).contains(&heads), "biased coin: {heads}/1000");
    }
}
