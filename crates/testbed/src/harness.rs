//! The Figure 11 test-set harness: 600 real-time interaction graphs — 300
//! with binary-correlation threats (BCT, two implicated rules) and 300 with
//! complex-correlation threats (CCT, three or more), half threat / half
//! normal in each family — together with the simulated event logs and the
//! state-frame vectors the OCSVM / IsolationForest baselines consume.

use crate::attack::{self, AttackKind};
use crate::home::{figure10_home, Home};
use crate::sim::{SimConfig, Simulator};
use glint_core::oracle::{self, ThreatKind};
use glint_graph::builder::full_graph;
use glint_graph::{GraphLabel, InteractionGraph};
use glint_rules::event::{EventKind, EventLog};
use glint_rules::{Attribute, Rule, StateValue};
use glint_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Threat complexity family (Figure 11's two panels).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ThreatComplexity {
    /// Binary-correlation threat: caused by two nodes.
    Bct,
    /// Complex-correlation threat: caused by more than two nodes.
    Cct,
}

/// One test case.
#[derive(Clone, Debug)]
pub struct TestCase {
    pub id: u64,
    pub complexity: ThreatComplexity,
    pub threat: bool,
    /// Policy findings (empty for normal cases).
    pub kinds: Vec<ThreatKind>,
    pub rules: Vec<Rule>,
    pub log: EventLog,
    pub graph: InteractionGraph,
    pub attack: Option<AttackKind>,
}

impl TestCase {
    /// Is every finding inside HAWatcher's expressible set? The paper lists
    /// goal conflict, action revert, and condition bypass as *not* covered.
    pub fn hawatcher_covered(&self) -> bool {
        self.kinds.iter().all(|k| {
            !matches!(
                k,
                ThreatKind::GoalConflict | ThreatKind::ActionRevert | ThreatKind::ConditionBypass
            )
        })
    }
}

/// Builds the 600-case set from oracle-labeled rule subsets of the paper's
/// scenario rules, each with its own simulated log (threat cases get an
/// attack injection).
pub struct TestSetBuilder {
    pub per_family: usize,
    pub sim_hours: f64,
    pub seed: u64,
}

impl Default for TestSetBuilder {
    fn default() -> Self {
        Self {
            per_family: 150,
            sim_hours: 6.0,
            seed: 0x7e57,
        }
    }
}

/// A threat subset paired with the oracle findings that label it.
type LabeledThreat = (Vec<Rule>, Vec<ThreatKind>);
/// (BCT threats, BCT normals, CCT threats, CCT normals).
type SubsetPools = (
    Vec<LabeledThreat>,
    Vec<Vec<Rule>>,
    Vec<LabeledThreat>,
    Vec<Vec<Rule>>,
);

impl TestSetBuilder {
    /// All scenario rules the cases draw from.
    fn rule_pool() -> Vec<Rule> {
        let mut rules = glint_rules::scenarios::table1_rules();
        rules.extend(glint_rules::scenarios::table4_settings());
        rules
    }

    /// Enumerate oracle-labeled subsets: (rules, findings) for sizes 2..=5.
    fn labeled_subsets(pool: &[Rule]) -> SubsetPools {
        let n = pool.len();
        let mut bct_threat = Vec::new();
        let mut bct_normal = Vec::new();
        let mut cct_threat = Vec::new();
        let mut cct_normal = Vec::new();
        // pairs
        for i in 0..n {
            for j in (i + 1)..n {
                let subset = vec![pool[i].clone(), pool[j].clone()];
                let refs: Vec<&Rule> = subset.iter().collect();
                let findings = oracle::label_rules(&refs);
                if findings.is_empty() {
                    bct_normal.push(subset);
                } else {
                    let kinds: Vec<ThreatKind> = findings.iter().map(|f| f.kind).collect();
                    bct_threat.push((subset, kinds));
                }
            }
        }
        // triples and quadruples (sampled exhaustively over the small pool)
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let subset = vec![pool[i].clone(), pool[j].clone(), pool[k].clone()];
                    let refs: Vec<&Rule> = subset.iter().collect();
                    let findings = oracle::label_rules(&refs);
                    if findings.is_empty() {
                        cct_normal.push(subset);
                    } else {
                        let kinds: Vec<ThreatKind> = findings.iter().map(|f| f.kind).collect();
                        cct_threat.push((subset, kinds));
                    }
                }
            }
        }
        (bct_threat, bct_normal, cct_threat, cct_normal)
    }

    /// Build the full test set (2 × `per_family` BCT + 2 × `per_family` CCT).
    pub fn build(&self) -> Vec<TestCase> {
        let pool = Self::rule_pool();
        let (bct_threat, bct_normal, cct_threat, cct_normal) = Self::labeled_subsets(&pool);
        assert!(!bct_threat.is_empty() && !bct_normal.is_empty());
        assert!(!cct_threat.is_empty() && !cct_normal.is_empty());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut cases = Vec::new();
        let mut id = 0u64;
        let push_case = |cases: &mut Vec<TestCase>,
                         rng: &mut StdRng,
                         rules: Vec<Rule>,
                         kinds: Vec<ThreatKind>,
                         complexity: ThreatComplexity,
                         id: &mut u64| {
            let threat = !kinds.is_empty();
            let config = SimConfig {
                seed: self.seed ^ *id,
                duration_hours: self.sim_hours,
                tick_minutes: 10.0,
                activity_rate: 2.0,
            };
            let mut log = Simulator::new(figure10_home(), rules.clone(), config).run();
            let attack = if threat {
                let kinds_all = AttackKind::all();
                let a = kinds_all[(*id as usize) % kinds_all.len()];
                log = attack::inject(&log, a, self.seed ^ (*id << 1));
                Some(a)
            } else {
                None
            };
            let mut graph = full_graph(&rules, &glint_core::construction::node_features);
            graph.label = Some(if threat {
                GraphLabel::Threat
            } else {
                GraphLabel::Normal
            });
            cases.push(TestCase {
                id: *id,
                complexity,
                threat,
                kinds,
                rules,
                log,
                graph,
                attack,
            });
            *id += 1;
            let _ = rng;
        };

        for family in [ThreatComplexity::Bct, ThreatComplexity::Cct] {
            let (threats, normals): (&[LabeledThreat], &[Vec<Rule>]) = match family {
                ThreatComplexity::Bct => (&bct_threat, &bct_normal),
                ThreatComplexity::Cct => (&cct_threat, &cct_normal),
            };
            for k in 0..self.per_family {
                let (rules, kinds) = threats[k % threats.len()].clone();
                push_case(&mut cases, &mut rng, rules, kinds, family, &mut id);
            }
            for k in 0..self.per_family {
                let rules = normals[k % normals.len()].clone();
                push_case(&mut cases, &mut rng, rules, Vec::new(), family, &mut id);
            }
        }
        cases.shuffle(&mut rng);
        cases
    }
}

/// Encode the home's device states + a few env notions as one numeric frame
/// after replaying the log's device events up to each event. Four
/// consecutive frames concatenated form one OCSVM/IsolationForest input
/// vector (the §4.8.1 protocol).
pub fn frame_vectors(home_template: &Home, log: &EventLog, stride: usize) -> Matrix {
    let mut home = home_template.clone();
    let mut frames: Vec<Vec<f32>> = Vec::new();
    for rec in log.records() {
        if let EventKind::DeviceState {
            device,
            location,
            state,
        } = &rec.kind
        {
            if let Some(i) = home.find(*device, *location) {
                home.device_mut(i).set(best_attr(*device, *state), *state);
            }
            frames.push(snapshot(&home));
        }
    }
    // fabricate a minimum history so every log yields at least one vector
    while frames.len() < 4 {
        frames.push(snapshot(&home));
    }
    let mut rows = Vec::new();
    let mut k = 0;
    while k + 4 <= frames.len() {
        let mut row = Vec::new();
        for f in &frames[k..k + 4] {
            row.extend_from_slice(f);
        }
        rows.push(row);
        k += stride.max(1);
    }
    Matrix::from_rows(&rows)
}

fn best_attr(device: glint_rules::DeviceKind, state: StateValue) -> Attribute {
    use StateValue::*;
    match state {
        Open | Closed => Attribute::OpenClose,
        Locked | Unlocked => Attribute::LockState,
        Armed | Disarmed | HomeMode | AwayMode => Attribute::Mode,
        Level(_) => Attribute::Level,
        On | Off => {
            if device.attributes().contains(&Attribute::Power) {
                Attribute::Power
            } else {
                Attribute::Playing
            }
        }
    }
}

fn snapshot(home: &Home) -> Vec<f32> {
    let mut v = Vec::with_capacity(home.devices.len() * 2);
    for d in &home.devices {
        for &attr in d.kind.attributes() {
            let x = match d.get(attr) {
                Some(
                    StateValue::On
                    | StateValue::Open
                    | StateValue::Unlocked
                    | StateValue::Armed
                    | StateValue::HomeMode,
                ) => 1.0,
                Some(StateValue::Level(l)) => l / 100.0,
                _ => 0.0,
            };
            v.push(x);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_test_set_is_balanced_and_labeled() {
        let builder = TestSetBuilder {
            per_family: 6,
            sim_hours: 1.0,
            seed: 1,
        };
        let cases = builder.build();
        assert_eq!(cases.len(), 24);
        let bct: Vec<_> = cases
            .iter()
            .filter(|c| c.complexity == ThreatComplexity::Bct)
            .collect();
        let cct: Vec<_> = cases
            .iter()
            .filter(|c| c.complexity == ThreatComplexity::Cct)
            .collect();
        assert_eq!(bct.len(), 12);
        assert_eq!(cct.len(), 12);
        assert_eq!(bct.iter().filter(|c| c.threat).count(), 6);
        assert_eq!(cct.iter().filter(|c| c.threat).count(), 6);
        for c in &cases {
            assert_eq!(c.threat, !c.kinds.is_empty());
            assert_eq!(c.graph.label.unwrap() == GraphLabel::Threat, c.threat);
            assert!(c.threat == c.attack.is_some());
            if c.complexity == ThreatComplexity::Bct {
                assert_eq!(c.rules.len(), 2);
            } else {
                assert!(c.rules.len() >= 3);
            }
        }
    }

    #[test]
    fn hawatcher_coverage_classification() {
        let builder = TestSetBuilder {
            per_family: 10,
            sim_hours: 0.5,
            seed: 2,
        };
        let cases = builder.build();
        // some threat cases must be uncovered (revert/goal-conflict/bypass)
        let uncovered = cases
            .iter()
            .filter(|c| c.threat && !c.hawatcher_covered())
            .count();
        assert!(uncovered > 0, "expected uncovered threat kinds in the pool");
    }

    #[test]
    fn frames_have_stable_width_and_four_frame_history() {
        let home = figure10_home();
        let builder = TestSetBuilder {
            per_family: 2,
            sim_hours: 0.5,
            seed: 3,
        };
        let cases = builder.build();
        let m = frame_vectors(&home, &cases[0].log, 1);
        assert!(m.rows() >= 1);
        let single = snapshot(&home).len();
        assert_eq!(m.cols(), single * 4);
    }
}
