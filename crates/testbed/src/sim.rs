//! Discrete-event smart-home simulator: environment dynamics, resident
//! activity, and the rule-execution engine that writes event logs.

use crate::home::Home;
use glint_rules::event::{EventKind, EventLog, EventRecord};
use glint_rules::{
    Action, Attribute, Channel, Condition, DeviceKind, Location, Rule, StateValue, Trigger,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub seed: u64,
    /// Simulated duration in hours (the paper's collection: one week = 168).
    pub duration_hours: f64,
    /// Environment tick length in minutes.
    pub tick_minutes: f64,
    /// Mean resident activity events per hour.
    pub activity_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            duration_hours: 168.0,
            tick_minutes: 10.0,
            activity_rate: 4.0,
        }
    }
}

/// Continuous environment state.
#[derive(Clone, Debug)]
pub struct Environment {
    /// (channel, house zone) → value. Temperature in °F, humidity %, etc.
    values: HashMap<(Channel, Location), f64>,
}

impl Environment {
    fn new() -> Self {
        let mut values = HashMap::new();
        values.insert((Channel::Temperature, Location::Outdoor), 70.0);
        values.insert((Channel::Temperature, Location::House), 72.0);
        values.insert((Channel::Humidity, Location::House), 45.0);
        values.insert((Channel::Illuminance, Location::House), 50.0);
        Self { values }
    }

    pub fn get(&self, channel: Channel, location: Location) -> f64 {
        // room-level queries fall back to the house zone; outdoor is its own
        *self
            .values
            .get(&(channel, location))
            .or_else(|| self.values.get(&(channel, zone_of(location))))
            .unwrap_or(&0.0)
    }

    fn set(&mut self, channel: Channel, location: Location, v: f64) {
        self.values.insert((channel, zone_of(location)), v);
    }
}

fn zone_of(location: Location) -> Location {
    if location == Location::Outdoor {
        Location::Outdoor
    } else {
        Location::House
    }
}

/// The simulator: home + rules + environment + activity script.
pub struct Simulator {
    pub home: Home,
    rules: Vec<Rule>,
    pub env: Environment,
    config: SimConfig,
    rng: StdRng,
    log: EventLog,
    now: f64,
    /// Per-rule time triggers already fired in the current hour-window.
    time_fired: HashMap<u32, i64>,
}

impl Simulator {
    pub fn new(home: Home, rules: Vec<Rule>, config: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            home,
            rules,
            env: Environment::new(),
            config,
            rng,
            log: EventLog::new(),
            now: 0.0,
            time_fired: HashMap::new(),
        }
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn now(&self) -> f64 {
        self.now
    }

    fn hour_of_day(&self) -> f32 {
        ((self.now / 3600.0) % 24.0) as f32
    }

    fn record(&mut self, kind: EventKind) {
        self.log.push(EventRecord::new(self.now, kind));
    }

    /// Run the configured duration and return the collected log.
    pub fn run(mut self) -> EventLog {
        let tick = self.config.tick_minutes * 60.0;
        let end = self.config.duration_hours * 3600.0;
        let p_activity = (self.config.activity_rate * tick / 3600.0).min(1.0);
        while self.now < end {
            self.environment_tick(tick);
            self.time_triggers();
            self.threshold_triggers();
            if self.rng.gen_bool(p_activity) {
                self.resident_activity();
            }
            self.now += tick;
        }
        self.log
    }

    /// Diurnal outdoor temperature, indoor drift, device physics.
    fn environment_tick(&mut self, dt: f64) {
        let h = self.hour_of_day() as f64;
        let outdoor = 70.0 + 15.0 * ((h - 14.0) * std::f64::consts::PI / 12.0).cos();
        self.env
            .set(Channel::Temperature, Location::Outdoor, outdoor);
        let indoor = self.env.get(Channel::Temperature, Location::House);
        let mut delta = (outdoor - indoor) * 0.02 * (dt / 600.0);
        let mut hum_delta = (45.0 - self.env.get(Channel::Humidity, Location::House)) * 0.05;
        // device physics
        for d in &self.home.devices {
            let on = d.get(Attribute::Power) == Some(StateValue::On);
            if !on {
                continue;
            }
            match d.kind {
                DeviceKind::AirConditioner => {
                    delta -= 1.0 * (dt / 600.0);
                    hum_delta -= 0.8;
                }
                DeviceKind::Heater | DeviceKind::Oven => delta += 1.0 * (dt / 600.0),
                DeviceKind::Humidifier => hum_delta += 1.0,
                DeviceKind::Dehumidifier => hum_delta -= 1.0,
                _ => {}
            }
        }
        self.env
            .set(Channel::Temperature, Location::House, indoor + delta);
        let hum = self.env.get(Channel::Humidity, Location::House);
        self.env.set(
            Channel::Humidity,
            Location::House,
            (hum + hum_delta * (dt / 600.0)).clamp(5.0, 95.0),
        );
        // periodic sensor readings in the log
        self.record(EventKind::ChannelReading {
            channel: Channel::Temperature,
            location: Location::House,
            value: self.env.get(Channel::Temperature, Location::House) as f32,
        });
    }

    /// Fire time-scheduled rules once per matching hour window.
    fn time_triggers(&mut self) {
        let hour_slot = (self.now / 3600.0).floor() as i64;
        let hour = self.hour_of_day();
        let due: Vec<u32> = self
            .rules
            .iter()
            .filter(|r| {
                matches!(&r.trigger, Trigger::Time(spec) if spec.matches(hour))
                    && self.time_fired.get(&r.id.0) != Some(&hour_slot)
            })
            .map(|r| r.id.0)
            .collect();
        for id in due {
            self.time_fired.insert(id, hour_slot);
            self.fire_rule(id, 0);
        }
    }

    /// Fire threshold/range rules when the environment satisfies them.
    fn threshold_triggers(&mut self) {
        let due: Vec<u32> = self
            .rules
            .iter()
            .filter(|r| match &r.trigger {
                Trigger::ChannelThreshold {
                    channel,
                    location,
                    cmp,
                    value,
                } => cmp.check(self.env.get(*channel, *location) as f32, *value),
                Trigger::ChannelRange {
                    channel,
                    location,
                    lo,
                    hi,
                } => {
                    let v = self.env.get(*channel, *location) as f32;
                    v >= *lo && v <= *hi
                }
                _ => false,
            })
            .map(|r| r.id.0)
            .collect();
        // a threshold keeps a rule "latched": re-firing is suppressed within
        // the hour to avoid log spam, like debounced real systems
        let hour_slot = (self.now / 3600.0).floor() as i64;
        for id in due {
            if self.time_fired.get(&(id | 0x8000_0000)) == Some(&hour_slot) {
                continue;
            }
            self.time_fired.insert(id | 0x8000_0000, hour_slot);
            self.fire_rule(id, 0);
        }
    }

    /// Seeded resident behavior: motion, doors, buttons, presence, TV.
    fn resident_activity(&mut self) {
        let rooms = [
            Location::Hallway,
            Location::LivingRoom,
            Location::Kitchen,
            Location::Bedroom,
        ];
        match self.rng.gen_range(0..6) {
            0 | 1 => {
                let room = rooms[self.rng.gen_range(0..rooms.len())];
                self.emit_channel_event(Channel::Motion, room);
            }
            2 => {
                self.emit_channel_event(Channel::Presence, Location::Hallway);
            }
            3 => {
                // open/close the hallway door manually
                let state = if self.rng.gen_bool(0.5) {
                    StateValue::Open
                } else {
                    StateValue::Closed
                };
                self.apply_device_change(
                    DeviceKind::Door,
                    Location::Hallway,
                    Attribute::OpenClose,
                    state,
                    0,
                );
            }
            4 => {
                // evening TV session
                if self.hour_of_day() > 18.0 {
                    self.apply_device_change(
                        DeviceKind::Tv,
                        Location::LivingRoom,
                        Attribute::Playing,
                        StateValue::On,
                        0,
                    );
                }
            }
            _ => {
                // button press (Manual triggers)
                self.record(EventKind::DeviceState {
                    device: DeviceKind::Button,
                    location: Location::Bedroom,
                    state: StateValue::On,
                });
                let manual: Vec<u32> = self
                    .rules
                    .iter()
                    .filter(|r| r.trigger == Trigger::Manual)
                    .map(|r| r.id.0)
                    .collect();
                for id in manual {
                    self.fire_rule(id, 0);
                }
            }
        }
    }

    /// Emit a discrete channel event and dispatch rules listening on it.
    pub fn emit_channel_event(&mut self, channel: Channel, location: Location) {
        self.record(EventKind::ChannelEvent { channel, location });
        let due: Vec<u32> = self
            .rules
            .iter()
            .filter(|r| match &r.trigger {
                Trigger::ChannelEvent {
                    channel: c,
                    location: l,
                } => *c == channel && (channel.is_global() || l.couples_with(location)),
                _ => false,
            })
            .map(|r| r.id.0)
            .collect();
        for id in due {
            self.fire_rule(id, 0);
        }
    }

    /// Check a rule's conditions against current state.
    fn conditions_hold(&self, rule: &Rule) -> bool {
        rule.conditions.iter().all(|c| match c {
            Condition::ChannelThreshold {
                channel,
                location,
                cmp,
                value,
            } => cmp.check(self.env.get(*channel, *location) as f32, *value),
            Condition::Time(spec) => spec.matches(self.hour_of_day()),
            Condition::DeviceState {
                device,
                location,
                attribute,
                state,
            } => self
                .home
                .find(*device, *location)
                .map(|i| self.home.device(i).get(*attribute) == Some(*state))
                .unwrap_or(false),
            Condition::HomeMode(mode) => self
                .home
                .find(DeviceKind::Alarm, Location::House)
                .map(|i| self.home.device(i).get(Attribute::Mode) == Some(*mode))
                .unwrap_or(*mode == StateValue::Disarmed),
        })
    }

    /// Execute one rule: log the firing, apply its actions, cascade.
    pub fn fire_rule(&mut self, rule_id: u32, depth: usize) {
        if depth > 6 {
            return; // cascade guard (action loops terminate in the log)
        }
        let Some(rule) = self.rules.iter().find(|r| r.id.0 == rule_id).cloned() else {
            return;
        };
        if !self.conditions_hold(&rule) {
            return;
        }
        self.record(EventKind::RuleFired { rule_id });
        for action in rule.actions.clone() {
            match action {
                Action::SetState {
                    device,
                    location,
                    attribute,
                    state,
                } => {
                    self.apply_device_change(device, location, attribute, state, depth + 1);
                }
                Action::SetLevel {
                    device,
                    location,
                    attribute,
                    value,
                } => {
                    self.apply_device_change(
                        device,
                        location,
                        attribute,
                        StateValue::Level(value),
                        depth + 1,
                    );
                }
                Action::Notify | Action::Snapshot { .. } => {
                    // notifications are sinks: logged only
                }
            }
        }
        // nudge time forward so causality is visible in timestamps
        self.now += 1.0;
    }

    /// Apply a device state change, log it, and dispatch device-state
    /// triggers plus physical side effects.
    pub fn apply_device_change(
        &mut self,
        device: DeviceKind,
        location: Location,
        attribute: Attribute,
        state: StateValue,
        depth: usize,
    ) {
        let Some(idx) = self.home.find(device, location) else {
            return;
        };
        let changed = self.home.device_mut(idx).set(attribute, state);
        if !changed {
            return;
        }
        let loc = self.home.device(idx).location;
        self.record(EventKind::DeviceState {
            device,
            location: loc,
            state,
        });
        // physical side effects: vacuum motion, TV sound, etc.
        if state == StateValue::On {
            match device {
                DeviceKind::Vacuum => self.emit_channel_event(Channel::Motion, loc),
                DeviceKind::Speaker | DeviceKind::Tv => {
                    self.emit_channel_event(Channel::Sound, loc)
                }
                _ => {}
            }
        }
        // dispatch device-state triggers
        let due: Vec<u32> = self
            .rules
            .iter()
            .filter(|r| match &r.trigger {
                Trigger::DeviceState {
                    device: d,
                    location: l,
                    attribute: a,
                    state: s,
                } => *d == device && *a == attribute && *s == state && l.couples_with(loc),
                _ => false,
            })
            .map(|r| r.id.0)
            .collect();
        for id in due {
            self.fire_rule(id, depth + 1);
        }
    }

    /// Fire a voice rule directly (the resident speaking to the assistant).
    pub fn voice_command(&mut self, rule_id: u32) {
        self.fire_rule(rule_id, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::figure10_home;
    use glint_rules::scenarios::table1_rules;

    fn one_day_sim() -> EventLog {
        let config = SimConfig {
            seed: 3,
            duration_hours: 24.0,
            ..Default::default()
        };
        Simulator::new(figure10_home(), table1_rules(), config).run()
    }

    #[test]
    fn produces_a_nonempty_ordered_log() {
        let log = one_day_sim();
        assert!(log.len() > 100, "log too sparse: {}", log.len());
        let times: Vec<f64> = log.records().iter().map(|r| r.timestamp).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn motion_rules_cascade_into_device_changes() {
        let log = one_day_sim();
        // rule 7: motion → light on; the log must contain rule firings and
        // consequent light state changes
        let fired7 = log
            .records()
            .iter()
            .any(|r| matches!(r.kind, EventKind::RuleFired { rule_id: 7 }));
        assert!(fired7, "motion rule never fired in a day of activity");
        let light_on = log.records().iter().any(|r| {
            matches!(
                r.kind,
                EventKind::DeviceState {
                    device: DeviceKind::Light,
                    state: StateValue::On,
                    ..
                }
            )
        });
        assert!(light_on);
    }

    #[test]
    fn smoke_event_opens_window_and_unlocks_door() {
        let config = SimConfig {
            seed: 4,
            duration_hours: 1.0,
            ..Default::default()
        };
        let mut sim = Simulator::new(figure10_home(), table1_rules(), config);
        sim.emit_channel_event(Channel::Smoke, Location::Kitchen);
        let log = sim.log.clone();
        let window_open = log.records().iter().any(|r| {
            matches!(
                r.kind,
                EventKind::DeviceState {
                    device: DeviceKind::Window,
                    state: StateValue::Open,
                    ..
                }
            )
        });
        let door_unlocked = log.records().iter().any(|r| {
            matches!(
                r.kind,
                EventKind::DeviceState {
                    device: DeviceKind::Door,
                    state: StateValue::Unlocked,
                    ..
                }
            )
        });
        assert!(
            window_open && door_unlocked,
            "smoke rule 6 must actuate both devices"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = one_day_sim();
        let b = one_day_sim();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[..20], b.records()[..20]);
    }

    #[test]
    fn cascade_depth_is_bounded() {
        // rules 110/111 of Table 4 form an action loop; the engine must not
        // recurse forever
        let rules = glint_rules::scenarios::table4_settings();
        let config = SimConfig {
            seed: 5,
            duration_hours: 0.5,
            ..Default::default()
        };
        let mut sim = Simulator::new(figure10_home(), rules, config);
        sim.apply_device_change(
            DeviceKind::Light,
            Location::Bedroom,
            Attribute::Power,
            StateValue::On,
            0,
        );
        assert!(
            sim.log.len() < 100,
            "loop guard failed: {} events",
            sim.log.len()
        );
    }

    #[test]
    fn week_long_log_matches_paper_order_of_magnitude() {
        let config = SimConfig {
            seed: 6,
            duration_hours: 168.0,
            tick_minutes: 10.0,
            activity_rate: 4.0,
        };
        let log = Simulator::new(figure10_home(), table1_rules(), config).run();
        // paper: 1,813 events in a week; periodic readings dominate here —
        // the automation-relevant subset should be in the same ballpark
        let automation_events = log
            .records()
            .iter()
            .filter(|r| !matches!(r.kind, EventKind::ChannelReading { .. }))
            .count();
        assert!(
            (300..12_000).contains(&automation_events),
            "unrealistic weekly event count: {automation_events}"
        );
    }
}
