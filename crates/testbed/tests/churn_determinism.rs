//! Load-generator determinism contract (the `BENCH_scale.json` pinning):
//! same seed + home count ⇒ a byte-identical serialized churn trace and an
//! identical counter set, re-parsed through the workspace's own
//! `serde_json` layer — the same shim the `micro_scale` bench uses to emit
//! the committed snapshot, so byte-identity here implies snapshot-identity
//! there.

use glint_testbed::{churn_trace, ChurnConfig, ChurnHarness};

fn cfg(seed: u64) -> ChurnConfig {
    ChurnConfig {
        homes: 48,
        deltas: 240,
        refresh_every: 32,
        seed,
        ..ChurnConfig::default()
    }
}

#[test]
fn trace_serializes_byte_identically_across_runs() {
    let a = serde_json::to_string(&churn_trace(cfg(7))).expect("trace serializes");
    let b = serde_json::to_string(&churn_trace(cfg(7))).expect("trace serializes");
    assert_eq!(
        a, b,
        "same seed + home count must give a byte-identical trace"
    );
    assert!(!a.is_empty());

    let c = serde_json::to_string(&churn_trace(cfg(8))).expect("trace serializes");
    assert_ne!(a, c, "a different seed must perturb the serialized trace");

    // and the bytes survive a round trip through the shim's parser
    let value = serde_json::parse(&a).expect("trace JSON re-parses");
    let events = value.as_seq().expect("trace is a JSON array");
    assert_eq!(events.len() as u64, cfg(7).homes * 3 + cfg(7).deltas);
}

#[test]
fn counter_set_is_identical_across_runs() {
    let c1 = ChurnHarness::new(cfg(7))
        .expect("harness boots")
        .run()
        .expect("run completes");
    let c2 = ChurnHarness::new(cfg(7))
        .expect("harness boots")
        .run()
        .expect("run completes");
    assert_eq!(c1, c2, "counters must be exactly reproducible");

    // the serialized counter object — what lands in BENCH_scale.json —
    // must be byte-identical too (field order is declaration order in the
    // workspace serde shim, so this also pins the snapshot layout)
    let j1 = serde_json::to_string(&c1).expect("counters serialize");
    let j2 = serde_json::to_string(&c2).expect("counters serialize");
    assert_eq!(j1, j2);

    // re-parse through the shim and spot-check the ratchet inputs exist
    let value = serde_json::parse(&j1).expect("counter JSON re-parses");
    let map = value.as_map().expect("counters are an object");
    for key in [
        "homes",
        "churn_deltas",
        "remined_pairs",
        "full_mine_pairs",
        "reembedded",
        "full_reembed",
    ] {
        assert!(
            map.iter().any(|(k, _)| k == key),
            "counter field {key} missing from the serialized set"
        );
    }
}
