//! CLI entry point: `cargo run -p glint-lint [-- --json] [--root <dir>]`.
//! Exits 1 when findings exist (CI gates on this), 2 on usage/IO errors.

use glint_lint::{lint_workspace, report, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: glint-lint [--json] [--root <dir>] [--list-rules]
  --json        machine-readable report on stdout
  --root <dir>  workspace root to scan (default: current directory)
  --list-rules  print every rule id and its invariant family";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in ALL_RULES {
            println!("{:<20} {}", rule.as_str(), rule.family());
        }
        return ExitCode::SUCCESS;
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("glint-lint: io error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report::json(&findings));
    } else {
        print!("{}", report::human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
