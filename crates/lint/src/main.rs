//! CLI entry point: `cargo run -p glint-lint [-- --json] [--root <dir>]`.
//! Exits 1 when findings exist or the census regressed past the baseline
//! (CI gates on this), 2 on usage/IO errors.

use glint_lint::{lint_workspace_with, report, Config, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: glint-lint [--json] [--root <dir>] [--list-rules]
                  [--bench-out <file>] [--baseline <file>]
  --json             machine-readable findings report on stdout
  --root <dir>       workspace root to scan (default: current directory)
  --list-rules       print every rule id and its invariant family
  --bench-out <file> write BENCH_lint.json (call-graph stats + ranked
                     inference-path allocation census) to <file>
  --baseline <file>  fail if the census has more total sites than the
                     committed BENCH_lint.json at <file>";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root = PathBuf::from(".");
    let mut bench_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |name: &str| -> Result<PathBuf, ExitCode> {
            args.next().map(PathBuf::from).ok_or_else(|| {
                eprintln!("{name} requires a path\n{USAGE}");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match path_arg("--root") {
                Ok(dir) => root = dir,
                Err(code) => return code,
            },
            "--bench-out" => match path_arg("--bench-out") {
                Ok(p) => bench_out = Some(p),
                Err(code) => return code,
            },
            "--baseline" => match path_arg("--baseline") {
                Ok(p) => baseline = Some(p),
                Err(code) => return code,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in ALL_RULES {
            println!("{:<20} {}", rule.as_str(), rule.family());
        }
        return ExitCode::SUCCESS;
    }

    let analysis = match lint_workspace_with(&root, &Config::default()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("glint-lint: io error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report::json(&analysis.findings));
    } else {
        print!("{}", report::human(&analysis.findings));
    }

    if let Some(path) = &bench_out {
        if let Err(e) = std::fs::write(path, report::bench_json(&analysis)) {
            eprintln!("glint-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut census_regressed = false;
    if let Some(path) = &baseline {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("glint-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let Some(allowed) = report::baseline_total_sites(&doc) else {
            eprintln!(
                "glint-lint: baseline {} has no \"total_sites\" field",
                path.display()
            );
            return ExitCode::from(2);
        };
        let now = analysis.census.total_sites();
        if now > allowed {
            census_regressed = true;
            eprintln!(
                "glint-lint: census regression — {now} allocation sites on the \
                 inference path, baseline allows {allowed}; either eliminate the \
                 new allocations or commit the regenerated BENCH_lint.json with \
                 a rationale"
            );
        } else {
            eprintln!("glint-lint: census {now} site(s) <= baseline {allowed}");
        }
    }

    if analysis.findings.is_empty() && !census_regressed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
