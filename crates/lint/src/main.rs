//! CLI entry point: `cargo run -p glint-lint [-- --json] [--root <dir>]`.
//! Exits 1 when findings exist or the census regressed past the baseline
//! (CI gates on this), 2 on usage/IO errors.

use glint_lint::{lint_workspace_with, report, Config, RuleId, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: glint-lint [--json] [--root <dir>] [--list-rules]
                  [--explain <rule>] [--bench-out <file>] [--baseline <file>]
  --json             machine-readable findings report on stdout
  --root <dir>       workspace root to scan (default: current directory)
  --list-rules       print every rule id and its invariant family
  --explain <rule>   print every finding for one rule with its witness
                     call chain (sink entry \u{2192} \u{2026} \u{2192} site)
  --bench-out <file> write BENCH_lint.json v3 (call-graph stats, panic-
                     surface certificate, ranked allocation census)
  --baseline <file>  fail if the census has more total sites, or the panic
                     surface more fns, than the committed BENCH_lint.json";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut explain: Option<RuleId> = None;
    let mut root = PathBuf::from(".");
    let mut bench_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_arg = |name: &str| -> Result<PathBuf, ExitCode> {
            args.next().map(PathBuf::from).ok_or_else(|| {
                eprintln!("{name} requires a path\n{USAGE}");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--explain" => match args.next().as_deref().map(RuleId::parse) {
                Some(Some(rule)) => explain = Some(rule),
                Some(None) => {
                    eprintln!("--explain: unknown rule (see --list-rules)\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--explain requires a rule id\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match path_arg("--root") {
                Ok(dir) => root = dir,
                Err(code) => return code,
            },
            "--bench-out" => match path_arg("--bench-out") {
                Ok(p) => bench_out = Some(p),
                Err(code) => return code,
            },
            "--baseline" => match path_arg("--baseline") {
                Ok(p) => baseline = Some(p),
                Err(code) => return code,
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in ALL_RULES {
            println!("{:<20} {}", rule.as_str(), rule.family());
        }
        return ExitCode::SUCCESS;
    }

    let analysis = match lint_workspace_with(&root, &Config::default()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("glint-lint: io error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = explain {
        print!("{}", report::explain(&analysis.findings, rule));
    } else if json {
        println!("{}", report::json(&analysis.findings));
    } else {
        print!("{}", report::human(&analysis.findings));
    }

    if let Some(path) = &bench_out {
        if let Err(e) = std::fs::write(path, report::bench_json(&analysis)) {
            eprintln!("glint-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut regressed = false;
    if let Some(path) = &baseline {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("glint-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let Some(allowed) = report::baseline_total_sites(&doc) else {
            eprintln!(
                "glint-lint: baseline {} has no \"total_sites\" field",
                path.display()
            );
            return ExitCode::from(2);
        };
        let now = analysis.census.total_sites();
        if now > allowed {
            regressed = true;
            eprintln!(
                "glint-lint: census regression — {now} allocation sites on the \
                 inference path, baseline allows {allowed}; either eliminate the \
                 new allocations or commit the regenerated BENCH_lint.json with \
                 a rationale"
            );
        } else {
            eprintln!("glint-lint: census {now} site(s) <= baseline {allowed}");
        }
        // Panic-surface ratchet: the serving path's panic-capable fn set
        // can only shrink. (A v2 baseline has no panic_fns field — the
        // first v3 run establishes it.)
        if let Some(allowed_fns) = report::baseline_panic_fns(&doc) {
            let now_fns = analysis.panic_surface.len();
            if now_fns > allowed_fns {
                regressed = true;
                eprintln!(
                    "glint-lint: panic-surface regression — {now_fns} panic-capable \
                     fn(s) reachable from the hot entry points, baseline allows \
                     {allowed_fns}; remove the panicking construct or commit the \
                     regenerated BENCH_lint.json with a rationale"
                );
            } else {
                eprintln!("glint-lint: panic surface {now_fns} fn(s) <= baseline {allowed_fns}");
            }
        }
    }

    if analysis.findings.is_empty() && !regressed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
