//! # glint-lint
//!
//! Self-hosted static analysis for the Glint workspace. PR 2 made training
//! and inference deterministic across thread counts; these invariants are
//! one `HashMap` iteration or one `partial_cmp(..).unwrap()` away from
//! silently regressing. This crate pins them mechanically:
//!
//! * **determinism** — no std hash-collection types in deterministic-crate
//!   library code, no wall-clock reads or OS-seeded RNGs outside bench;
//! * **NaN-safety** — no `partial_cmp(..).unwrap()`, no ordering adaptors
//!   driven by `partial_cmp`, no float-literal `==`;
//! * **panic-safety** — no `unwrap`/`expect`/panicking macros in designated
//!   hot-path kernels (slice indexing opt-in per module).
//!
//! No external parser: a small hand-written lexer ([`lexer`]) that is
//! comment/string/raw-string aware feeds token-pattern rules ([`rules`]).
//! Violations that are individually sound carry a justified suppression
//! pragma: `// glint-lint: allow(<rule>) — <reason>`.
//!
//! The workspace lints itself: `tests/invariant_lint.rs` in the root crate
//! runs [`lint_workspace`] under `cargo test` and asserts zero findings,
//! and `scripts/ci.sh` runs the binary with `--json`.

pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{Config, Finding, RuleId, ALL_RULES};

use std::path::{Path, PathBuf};

/// Lint a single source string as if it lived at workspace-relative `path`
/// (the path decides which rules apply). Fixture tests drive this directly.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let toks = lexer::strip_cfg_test(&lexed.toks);
    rules::check_file(path, &toks, &lexed.comments, cfg)
}

/// Lint the whole workspace rooted at `root` with the default [`Config`].
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_workspace_with(root, &Config::default())
}

/// Lint the whole workspace rooted at `root`. Scans library code only:
/// `src/` trees of the root package and of every crate under `crates/`
/// (shims, tests, benches, examples, and fixtures are out of scope — the
/// invariants guard shipping code).
pub fn lint_workspace_with(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }

    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel, &src, cfg));
    }
    findings.sort();
    Ok(findings)
}

/// Directory entries sorted by name — the report order must itself be
/// deterministic.
fn sorted_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
