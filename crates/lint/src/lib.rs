//! # glint-lint
//!
//! Self-hosted static analysis for the Glint workspace. PR 2 made training
//! and inference deterministic across thread counts; these invariants are
//! one `HashMap` iteration or one `partial_cmp(..).unwrap()` away from
//! silently regressing. This crate pins them mechanically:
//!
//! * **determinism** — no std hash-collection types in deterministic-crate
//!   library code, no wall-clock reads or OS-seeded RNGs outside bench;
//! * **NaN-safety** — no `partial_cmp(..).unwrap()`, no ordering adaptors
//!   driven by `partial_cmp`, no float-literal `==`;
//! * **panic-safety** — no `unwrap`/`expect`/panicking macros/`catch_unwind`
//!   in *call-graph-hot* code (slice indexing opt-in per fn);
//! * **concurrency** — no non-`Relaxed` atomic orderings or lock
//!   acquisitions in call-graph-hot code without a justification.
//!
//! Two layers, no external parser:
//!
//! 1. a hand-written lexer ([`lexer`]) feeds a syntax layer ([`syntax`])
//!    that recognizes items (`fn`/`impl`/`trait`/`mod`, `#[cfg(test)]` and
//!    `#[cfg(feature = "…")]` aware), fn bodies, and call expressions —
//!    one symbol table per file;
//! 2. the symbol tables merge into a workspace-wide approximate call graph
//!    ([`callgraph`]); "hot" is *defined by reachability* from the entry
//!    points in [`Config::hot_entry_points`] (kernels, `GlintDetector`
//!    serving methods, trainer step functions), so hotness follows code
//!    motion instead of a hand-maintained file list. The same graph drives
//!    an allocation-site census over the inference fast path ([`census`]),
//!    exported as `BENCH_lint.json` with call-chain evidence per site.
//!
//! Resolution is name-based and deliberately over-approximate: a method
//! call may mark several same-named fns hot, which is conservative for
//! panic-safety (never *less* hot code than reality). Calls that resolve
//! to nothing in the workspace (std, fn pointers, macros) are counted and
//! reported, not silently dropped.
//!
//! Violations that are individually sound carry a justified suppression
//! pragma: `// glint-lint: allow(<rule>) — <reason>`. A pragma that
//! suppresses nothing is itself a finding (`unused-allow`).
//!
//! The workspace lints itself: `tests/invariant_lint.rs` in the root crate
//! runs [`lint_workspace`] under `cargo test` and asserts zero findings,
//! and `scripts/ci.sh` runs the binary with `--json --bench-out` and gates
//! the census against the committed `BENCH_lint.json`.

pub mod callgraph;
pub mod census;
pub mod dataflow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;

pub use rules::{Config, Finding, RuleId, ALL_RULES};

use callgraph::CallGraph;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use syntax::FileSyntax;

/// Call-graph summary carried alongside findings in reports.
#[derive(Debug, Default)]
pub struct GraphStats {
    pub files: usize,
    pub fns: usize,
    pub resolved_calls: usize,
    /// Actionable unresolved worklist: call names that resolved to nothing
    /// in the workspace, minus enum-variant constructors and std staples
    /// (the raw totals stay in `unresolved_raw_*`).
    pub unresolved: BTreeMap<String, usize>,
    /// Distinct unresolved callee names before filtering.
    pub unresolved_raw_names: usize,
    /// Total unresolved call sites before filtering.
    pub unresolved_raw_calls: usize,
    /// Fns reachable from the hot entry points.
    pub hot_fns: usize,
}

/// Full result of one analysis run: lint findings, the inference-path
/// allocation census, the panic-surface certificate, and call-graph
/// statistics.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub census: census::Census,
    /// Panic-capable fns reachable from the hot entry points (ratcheted
    /// in CI via `BENCH_lint.json` v3).
    pub panic_surface: Vec<dataflow::PanicFn>,
    pub stats: GraphStats,
}

/// Analyze a set of (workspace-relative path, source) pairs as one
/// workspace: parse every file, build the call graph, derive hot regions,
/// run the per-site rules and the interprocedural passes (sharing one
/// suppression layer), and take the census.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Analysis {
    let files: Vec<FileSyntax> = sources
        .iter()
        .map(|(path, src)| FileSyntax::parse(path, src))
        .collect();
    let graph = CallGraph::build(&files);
    let hot = graph.reachable(&cfg.hot_entry_points);
    let hot_ranges = graph.hot_ranges(&hot);
    let no_index_ranges = callgraph::spec_ranges(&graph, &cfg.no_index_fns);
    const EMPTY: &[(usize, usize)] = &[];

    // Interprocedural findings, grouped per file so they run through the
    // same pragma suppression as the per-site rules.
    let flow = dataflow::run(&graph, &files, cfg);
    let mut flow_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in flow.findings {
        flow_by_file.entry(f.file.clone()).or_default().push(f);
    }

    let mut findings = Vec::new();
    for f in &files {
        let input = rules::FileInput {
            path: &f.path,
            toks: &f.toks,
            comments: &f.comments,
            test_ranges: &f.test_ranges,
            hot_ranges: hot_ranges.get(f.path.as_str()).map_or(EMPTY, |v| v),
            no_index_ranges: no_index_ranges.get(f.path.as_str()).map_or(EMPTY, |v| v),
        };
        let scan = rules::scan_file(&input, cfg);
        let extra = flow_by_file.remove(f.path.as_str()).unwrap_or_default();
        findings.extend(rules::finish_file(scan, extra));
    }
    findings.sort();

    let census = census::run(&graph, &cfg.inference_entry_points, &files);
    let stats = GraphStats {
        files: files.len(),
        fns: graph.fns.len(),
        resolved_calls: graph.resolved_calls,
        unresolved: graph.actionable_unresolved(),
        unresolved_raw_names: graph.unresolved.len(),
        unresolved_raw_calls: graph.unresolved.values().sum(),
        hot_fns: hot.len(),
    };
    Analysis {
        findings,
        census,
        panic_surface: flow.panic_surface,
        stats,
    }
}

/// Lint a single source string as if it lived at workspace-relative `path`.
/// The call graph is built from this one file, so `cfg.hot_entry_points`
/// must name fns defined in it for hot rules to fire. Fixture tests drive
/// this directly.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    analyze_sources(&[(path.to_string(), src.to_string())], cfg).findings
}

/// Lint the whole workspace rooted at `root` with the default [`Config`].
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_workspace_with(root, &Config::default()).map(|a| a.findings)
}

/// Analyze the whole workspace rooted at `root`. Scans library code only:
/// `src/` trees of the root package and of every crate under `crates/`
/// (shims, tests, benches, examples, and fixtures are out of scope — the
/// invariants guard shipping code).
pub fn lint_workspace_with(root: &Path, cfg: &Config) -> std::io::Result<Analysis> {
    let sources = workspace_sources(root)?;
    Ok(analyze_sources(&sources, cfg))
}

/// Collect (workspace-relative path, contents) for every library source
/// file in scan scope, sorted by path — report order must itself be
/// deterministic.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&file)?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// Directory entries sorted by name.
fn sorted_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
