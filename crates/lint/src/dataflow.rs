//! Interprocedural dataflow over the workspace call graph.
//!
//! The per-site rules in [`crate::rules`] prove facts about one expression;
//! this module proves *path* properties: a wall-clock read that flows into
//! a verdict, a lock held across a callee that itself locks, a fn on the
//! serving path that can panic at all. Everything here is driven by one
//! engine — [`propagate_up`], a monotone worklist over the reverse call
//! graph — plus plain forward reachability for the certificate passes.
//!
//! Four analyses (DESIGN.md "Interprocedural dataflow"):
//!
//! * **determinism taint** (`taint-flow`) — source sites (wall-clock reads,
//!   OS-seeded RNGs, hash-iteration types) inside any fn that the sink
//!   entry points ([`Config::taint_sinks`] — verdict/score outputs, GLINTDUR
//!   envelope writes, checkpoint payloads — plus deterministic-crate fns
//!   with ordering-sensitive calls) can reach over the call graph. The
//!   per-site wall-clock/entropy rules stay (they catch sources that reach
//!   no sink yet); the taint pass adds the end-to-end flow evidence with a
//!   witness chain sink → … → source.
//! * **lock-order** (`lock-cycle`, `lock-across-call`) — lock-acquisition
//!   sites per fn, may-acquire sets propagated through calls to a fixed
//!   point, a workspace lock-order graph, cycle findings (potential
//!   deadlock, including re-entrant self-deadlock), and findings for every
//!   call made while a lock is held to a callee that may itself acquire.
//! * **panic surface** — the transitive set of panic-capable fns reachable
//!   from the hot entry points, as a named list ([`PanicFn`]) emitted into
//!   `BENCH_lint.json` v3 and ratcheted by CI: the serving panic surface
//!   can only shrink.
//! * **tape purity** (`tape-purity`) — no [`Config::tape_pure_fns`]
//!   implementation may reach a tape-allocating constructor
//!   ([`Config::tape_alloc_fns`]); pins the tape-free inference fast path
//!   statically.
//!
//! Soundness inherits the call graph's posture: over-approximate dispatch
//! means flows/edges that cannot happen at runtime may be reported (and
//! carry justified pragmas); fn-pointer and macro-generated calls the graph
//! cannot see are the known under-approximation.

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::rules::{Config, Finding, RuleId, ORDER_FNS};
use crate::syntax::{CallKind, FileSyntax};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Propagate per-fn facts from callees to callers until nothing changes.
///
/// `join(caller_fact, callee_fact)` must return `true` iff the caller's
/// fact grew, and must be *monotone* (facts only ever grow). Facts live in
/// finite lattices (sets of workspace names), so the worklist terminates —
/// including on recursive and mutually-recursive call cycles, which simply
/// stop re-queueing once their facts stabilize.
pub fn propagate_up<T, J>(graph: &CallGraph, mut facts: Vec<T>, mut join: J) -> Vec<T>
where
    T: Clone,
    J: FnMut(&mut T, &T) -> bool,
{
    let callers = graph.callers();
    let mut queue: VecDeque<usize> = (0..facts.len()).collect();
    let mut queued = vec![true; facts.len()];
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        let fact = facts[i].clone();
        for &c in &callers[i] {
            if join(&mut facts[c], &fact) && !queued[c] {
                queued[c] = true;
                queue.push_back(c);
            }
        }
    }
    facts
}

/// One fn on the panic-surface certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicFn {
    /// Qualified name (`crate::module::Type::fn`).
    pub qualified: String,
    pub file: String,
    pub line: u32,
    /// Which panic-capable constructs the body contains, sorted + deduped:
    /// `"unwrap"`, `"panic"`, `"assert"`, `"index"`, `"div"`.
    pub kinds: Vec<&'static str>,
}

/// Result of the interprocedural passes: findings (merged into per-file
/// suppression by lib.rs) plus the panic-surface certificate.
#[derive(Debug, Default)]
pub struct Dataflow {
    pub findings: Vec<Finding>,
    /// Panic-capable fns reachable from the hot entry points, sorted by
    /// qualified name. Emitted into `BENCH_lint.json` v3 and ratcheted.
    pub panic_surface: Vec<PanicFn>,
}

/// Run all four analyses. `files` supplies the token streams the graph's
/// body ranges index into.
pub fn run(graph: &CallGraph, files: &[FileSyntax], cfg: &Config) -> Dataflow {
    let toks_of: BTreeMap<&str, &[Tok]> = files
        .iter()
        .map(|fs| (fs.path.as_str(), fs.toks.as_slice()))
        .collect();
    let mut findings = Vec::new();
    taint_flow(graph, &toks_of, cfg, &mut findings);
    lock_order(graph, &toks_of, &mut findings);
    tape_purity(graph, cfg, &mut findings);
    let panic_surface = panic_surface(graph, &toks_of, cfg);
    findings.sort();
    findings.dedup();
    Dataflow {
        findings,
        panic_surface,
    }
}

// ---------------------------------------------------------------------------
// determinism taint
// ---------------------------------------------------------------------------

/// A nondeterminism source site inside one fn body.
struct TaintSource {
    line: u32,
    what: String,
}

/// Scan one fn body for nondeterminism sources. `clock_exempt` drops the
/// wall-clock/entropy kinds (bench code times things by design) but keeps
/// hash-iteration: order-dependence is a bug even in bench code feeding a
/// report.
fn taint_sources(toks: &[Tok], start: usize, end: usize, clock_exempt: bool) -> Vec<TaintSource> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    let id = |i: usize| -> Option<&str> {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    for i in start..end {
        let Some(name) = id(i) else { continue };
        match name {
            "Instant" | "SystemTime"
                if !clock_exempt
                    && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
                    && id(i + 2) == Some("now") =>
            {
                out.push(TaintSource {
                    line: toks[i].line,
                    what: format!("`{name}::now()` wall-clock read"),
                });
            }
            "thread_rng" | "from_entropy" if !clock_exempt => {
                out.push(TaintSource {
                    line: toks[i].line,
                    what: format!("`{name}` OS-seeded randomness"),
                });
            }
            "HashMap" | "HashSet" | "RandomState" => {
                out.push(TaintSource {
                    line: toks[i].line,
                    what: format!("`{name}` (iteration order is random per process)"),
                });
            }
            _ => {}
        }
    }
    out
}

/// `taint-flow`: report every source site inside a fn that a taint sink can
/// reach over the call graph. Anything executed while computing a sink's
/// output may influence it — the classic reachability over-approximation;
/// precision comes from the narrowed call graph, not from value tracking.
fn taint_flow(
    graph: &CallGraph,
    toks_of: &BTreeMap<&str, &[Tok]>,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    // Sink set: configured specs plus deterministic-crate fns that order
    // floats (`sort_by`/`total_cmp`/… keys are verdict-order sensitive).
    let mut sinks: BTreeSet<usize> = BTreeSet::new();
    for spec in &cfg.taint_sinks {
        sinks.extend(graph.match_spec(spec));
    }
    for (i, f) in graph.fns.iter().enumerate() {
        if !cfg.in_deterministic(&f.file) {
            continue;
        }
        if f.calls
            .iter()
            .any(|c| ORDER_FNS.contains(&c.name.as_str()) || c.name == "total_cmp")
        {
            sinks.insert(i);
        }
    }
    let parents = graph.parents_from_set(&sinks);
    for &i in parents.keys() {
        let f = &graph.fns[i];
        let Some((start, end)) = f.body else { continue };
        let Some(toks) = toks_of.get(f.file.as_str()) else {
            continue;
        };
        let chain = graph.chain(&parents, i);
        let sink_name = chain.first().cloned().unwrap_or_default();
        for src in taint_sources(toks, start, end, cfg.clock_exempt(&f.file)) {
            findings.push(Finding {
                file: f.file.clone(),
                line: src.line,
                rule: RuleId::TaintFlow,
                message: format!(
                    "{} can flow into sink `{sink_name}` (via {} call(s)); \
                     the sink's output must be reproducible",
                    src.what,
                    chain.len().saturating_sub(1),
                ),
                witness: chain.clone(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// One lock acquisition inside a fn body.
#[derive(Clone)]
struct LockSite {
    /// Stable lock identity (see [`lock_identity`]).
    id: String,
    /// Index of the `lock`/`try_lock` name token.
    tok: usize,
    line: u32,
    /// Held region `[tok, end)` in token indices: end of the enclosing
    /// block for `let`-bound guards, end of statement for temporaries.
    end: usize,
}

/// Name a lock from the tokens around its `.lock()` call. Identity is
/// heuristic but stable:
///
/// * `registry().lock()` → the resolved qualified name of `registry` (or
///   `{krate}::registry` when unresolved) — the idiom for module-level
///   `Mutex` statics behind accessor fns;
/// * `SOME_STATIC.lock()` → `{krate}::SOME_STATIC`;
/// * `self.field.lock()` → `{ReceiverType}.field`;
/// * `x.lock()` on a local/param → `{krate}::x` (weak, but two fns in the
///   same crate locking through the same name are usually the same lock —
///   over-approximate in the safe direction for ordering).
fn lock_identity(graph: &CallGraph, fn_idx: usize, lock_tok: usize, toks: &[Tok]) -> String {
    let f = &graph.fns[fn_idx];
    // Receiver is a call expression: `accessor( … ).lock()`. Find the call
    // site whose argument group closes right before the dot.
    if lock_tok >= 2 && toks[lock_tok - 1].text == "." && toks[lock_tok - 2].text == ")" {
        for (k, c) in f.calls.iter().enumerate() {
            if c.tok + 1 >= toks.len() || toks[c.tok + 1].text != "(" {
                continue;
            }
            let close = close_of(toks, c.tok + 1);
            if close == Some(lock_tok - 2) {
                if let Some(&t) = graph.call_targets[fn_idx][k].first() {
                    return graph.fns[t].qualified();
                }
                return format!("{}::{}", f.krate, c.name);
            }
        }
    }
    // Plain-identifier receivers: the call site recorded them.
    let (recv, base) = match f.calls.iter().find(|c| c.tok == lock_tok).map(|c| &c.kind) {
        Some(CallKind::Method {
            recv_ident,
            recv_base,
        }) => (recv_ident.as_deref(), recv_base.as_deref()),
        _ => (None, None),
    };
    match (recv, base) {
        (Some(field), Some("self")) => {
            let ty = f.receiver.as_deref().unwrap_or("Self");
            format!("{ty}.{field}")
        }
        (Some(name), _) => format!("{}::{name}", f.krate),
        _ => format!("{}::<expr>", f.krate),
    }
}

/// Token index of the `)` closing the group opened at `open` (which must
/// point at `(`), or `None` if unbalanced.
fn close_of(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Compute the held region end for a lock acquired at `lock_tok`.
/// `let`-bound guards live to the end of the enclosing block; temporaries
/// die at the statement's `;`. Early `drop(guard)` is not modeled — the
/// region over-approximates, which only adds candidate edges.
fn held_end(toks: &[Tok], body: (usize, usize), lock_tok: usize) -> usize {
    let (start, end) = body;
    let end = end.min(toks.len());
    // Statement start: walk back to the nearest `;`, `{`, or `}`.
    let mut stmt_start = start;
    let mut j = lock_tok;
    while j > start {
        j -= 1;
        if matches!(toks[j].text.as_str(), ";" | "{" | "}") {
            stmt_start = j + 1;
            break;
        }
    }
    let let_bound = toks[stmt_start..lock_tok]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "let");
    let mut depth = 0i32;
    for (i, tok) in toks.iter().enumerate().take(end).skip(lock_tok) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    // End of the enclosing block: even a let-bound guard
                    // is dropped here.
                    return i;
                }
            }
            ";" if depth == 0 && !let_bound => return i,
            _ => {}
        }
    }
    end
}

/// `lock-cycle` + `lock-across-call`: build per-fn lock sites and held
/// regions, propagate may-acquire sets to a fixed point, emit the
/// workspace lock-order graph's cycles and every call made under a lock to
/// a callee that may itself acquire.
fn lock_order(graph: &CallGraph, toks_of: &BTreeMap<&str, &[Tok]>, findings: &mut Vec<Finding>) {
    let n = graph.fns.len();
    // Per-fn lock sites.
    let mut sites: Vec<Vec<LockSite>> = vec![Vec::new(); n];
    for (i, f) in graph.fns.iter().enumerate() {
        let Some(body) = f.body else { continue };
        let Some(&toks) = toks_of.get(f.file.as_str()) else {
            continue;
        };
        for c in &f.calls {
            let is_lock = matches!(c.kind, CallKind::Method { .. })
                && (c.name == "lock" || c.name == "try_lock");
            if !is_lock {
                continue;
            }
            sites[i].push(LockSite {
                id: lock_identity(graph, i, c.tok, toks),
                tok: c.tok,
                line: c.line,
                end: held_end(toks, body, c.tok),
            });
        }
    }

    // May-acquire: locks a fn (or anything it can call) may take.
    let init: Vec<BTreeSet<String>> = sites
        .iter()
        .map(|ls| ls.iter().map(|l| l.id.clone()).collect())
        .collect();
    let may_acquire = propagate_up(graph, init, |caller, callee| {
        let before = caller.len();
        caller.extend(callee.iter().cloned());
        caller.len() != before
    });

    // Lock-order edges: held → acquired-while-held, each with one
    // representative site.
    let mut edge_site: BTreeMap<(String, String), (String, u32, Vec<String>)> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        for held in &sites[i] {
            // Direct nested acquisitions in the same fn.
            for inner in &sites[i] {
                if inner.tok > held.tok && inner.tok < held.end {
                    edge_site
                        .entry((held.id.clone(), inner.id.clone()))
                        .or_insert_with(|| (f.file.clone(), inner.line, vec![f.qualified()]));
                }
            }
            // Calls inside the held region whose callees may acquire.
            for (k, c) in f.calls.iter().enumerate() {
                if c.tok <= held.tok || c.tok >= held.end {
                    continue;
                }
                let acquired: BTreeSet<&String> = graph.call_targets[i][k]
                    .iter()
                    .flat_map(|&t| may_acquire[t].iter())
                    .collect();
                if acquired.is_empty() {
                    continue;
                }
                let names: Vec<String> = acquired.iter().map(|s| s.to_string()).collect();
                let reentrant = acquired.contains(&held.id);
                findings.push(Finding {
                    file: f.file.clone(),
                    line: c.line,
                    rule: RuleId::LockAcrossCall,
                    message: format!(
                        "`{}` is called while `{}` is held and may itself acquire {}{}",
                        c.name,
                        held.id,
                        names
                            .iter()
                            .map(|s| format!("`{s}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        if reentrant {
                            " — re-acquiring the held lock deadlocks"
                        } else {
                            "; narrow the guard or hoist the call"
                        }
                    ),
                    witness: vec![
                        f.qualified(),
                        format!("holds {} @ {}:{}", held.id, f.file, held.line),
                        format!("calls {} @ line {}", c.name, c.line),
                    ],
                });
                for id in names {
                    edge_site
                        .entry((held.id.clone(), id))
                        .or_insert_with(|| (f.file.clone(), c.line, vec![f.qualified()]));
                }
            }
        }
    }

    // Cycle detection over the lock-order graph.
    let mut adj: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for (a, b) in edge_site.keys() {
        adj.entry(a).or_default().insert(b);
    }
    let reaches = |from: &String, to: &String| -> bool {
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if let Some(next) = adj.get(x) {
                for &y in next {
                    if seen.insert(y) {
                        stack.push(y);
                    }
                }
            }
        }
        false
    };
    for ((a, b), (file, line, chain)) in &edge_site {
        let cyclic = a == b || reaches(b, a);
        if !cyclic {
            continue;
        }
        let shape = if a == b {
            format!("`{a}` acquired while already held (self-deadlock)")
        } else {
            format!("`{a}` → `{b}` closes a lock-order cycle (potential deadlock)")
        };
        findings.push(Finding {
            file: file.clone(),
            line: *line,
            rule: RuleId::LockCycle,
            message: format!("{shape}; acquire locks in one global order"),
            witness: chain.clone(),
        });
    }
}

// ---------------------------------------------------------------------------
// panic surface
// ---------------------------------------------------------------------------

/// Panic-capable construct kinds, report order.
const PANIC_KINDS: &[&str] = &["unwrap", "panic", "assert", "index", "div"];

/// Scan one fn body for panic-capable constructs. Returns kind flags
/// indexed like [`PANIC_KINDS`].
fn panic_kinds(toks: &[Tok], start: usize, end: usize) -> [bool; 5] {
    let mut found = [false; 5];
    let end = end.min(toks.len());
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for i in start..end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect" if text(i.wrapping_sub(1)) == Some(".") => found[0] = true,
                "panic" | "unreachable" | "todo" | "unimplemented" if text(i + 1) == Some("!") => {
                    found[1] = true
                }
                "assert" | "assert_eq" | "assert_ne" if text(i + 1) == Some("!") => found[2] = true,
                _ => {}
            }
            continue;
        }
        // `expr[…]` indexing: `[` after a value-ending token. Types
        // (`: [f32; 4]`), attributes (`#[…]`), and slice patterns sit
        // after `:`/`#`/`(`/`,`/`=`, never after an ident/`)`/`]`.
        if t.text == "["
            && i > start
            && (matches!(toks[i - 1].kind, TokKind::Ident)
                || matches!(text(i - 1), Some(")") | Some("]")))
        {
            found[3] = true;
        }
        // `a / b`, `a % b` with a non-literal divisor: integer division
        // and remainder panic on zero. Token-level analysis cannot see
        // types, so float division is over-counted — documented imprecision
        // of the certificate, in the safe direction.
        if (t.text == "/" || t.text == "%") && i > start {
            let lhs_value = matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Int)
                || matches!(text(i - 1), Some(")") | Some("]"));
            let rhs_risky = toks
                .get(i + 1)
                .is_some_and(|r| r.kind == TokKind::Ident || r.text == "(");
            if lhs_value && rhs_risky {
                found[4] = true;
            }
        }
    }
    found
}

/// The panic-surface certificate: every fn reachable from the hot entry
/// points whose body contains a panic-capable construct.
fn panic_surface(
    graph: &CallGraph,
    toks_of: &BTreeMap<&str, &[Tok]>,
    cfg: &Config,
) -> Vec<PanicFn> {
    let hot = graph.reachable(&cfg.hot_entry_points);
    let mut out = Vec::new();
    for &i in &hot {
        let f = &graph.fns[i];
        let Some((start, end)) = f.body else { continue };
        let Some(&toks) = toks_of.get(f.file.as_str()) else {
            continue;
        };
        let flags = panic_kinds(toks, start, end);
        let kinds: Vec<&'static str> = PANIC_KINDS
            .iter()
            .zip(flags)
            .filter(|(_, on)| *on)
            .map(|(k, _)| *k)
            .collect();
        if kinds.is_empty() {
            continue;
        }
        out.push(PanicFn {
            qualified: f.qualified(),
            file: f.file.clone(),
            line: f.line,
            kinds,
        });
    }
    out.sort_by(|a, b| (&a.qualified, &a.file, a.line).cmp(&(&b.qualified, &b.file, b.line)));
    out
}

// ---------------------------------------------------------------------------
// tape purity
// ---------------------------------------------------------------------------

/// `tape-purity`: no fn matching [`Config::tape_pure_fns`] may reach a fn
/// matching [`Config::tape_alloc_fns`] — the inference fast path must stay
/// tape-free (PR 7's guarantee, pinned statically).
fn tape_purity(graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    let mut alloc: BTreeSet<usize> = BTreeSet::new();
    for spec in &cfg.tape_alloc_fns {
        alloc.extend(graph.match_spec(spec));
    }
    if alloc.is_empty() {
        return;
    }
    for spec in &cfg.tape_pure_fns {
        for entry in graph.match_spec(spec) {
            let mut seed = BTreeSet::new();
            seed.insert(entry);
            let parents = graph.parents_from_set(&seed);
            // Deterministic witness: the lexically-first reached alloc fn.
            let Some(&hit) = alloc.iter().find(|t| parents.contains_key(t)) else {
                continue;
            };
            let f = &graph.fns[entry];
            findings.push(Finding {
                file: f.file.clone(),
                line: f.line,
                rule: RuleId::TapePurity,
                message: format!(
                    "`{}` reaches tape allocation `{}`: the inference fast \
                     path must not build a tape",
                    f.qualified(),
                    graph.fns[hit].qualified()
                ),
                witness: graph.chain(&parents, hit),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::FileSyntax;

    fn setup(files: &[(&str, &str)]) -> (CallGraph, Vec<FileSyntax>) {
        let parsed: Vec<FileSyntax> = files.iter().map(|(p, s)| FileSyntax::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        (graph, parsed)
    }

    fn flow(files: &[(&str, &str)], cfg: &Config) -> Dataflow {
        let (graph, parsed) = setup(files);
        run(&graph, &parsed, cfg)
    }

    #[test]
    fn fixed_point_converges_on_cyclic_graphs() {
        // a ↔ b mutual recursion, c calls a: every fact must flow to every
        // transitive caller exactly once, and the worklist must terminate.
        let (graph, _) = setup(&[(
            "crates/x/src/lib.rs",
            "fn a() { b(); } fn b() { a(); leaf(); } fn c() { a(); } fn leaf() {}",
        )]);
        let idx = |n: &str| graph.match_spec(n)[0];
        let init: Vec<BTreeSet<String>> = graph
            .fns
            .iter()
            .map(|f| {
                if f.name == "leaf" {
                    std::iter::once("L".to_string()).collect()
                } else {
                    BTreeSet::new()
                }
            })
            .collect();
        let facts = propagate_up(&graph, init, |caller, callee| {
            let before = caller.len();
            caller.extend(callee.iter().cloned());
            caller.len() != before
        });
        for n in ["a", "b", "c"] {
            assert!(facts[idx(n)].contains("L"), "{n} missed the callee fact");
        }
    }

    #[test]
    fn taint_reaches_sinks_through_calls_with_witness() {
        let cfg = Config {
            taint_sinks: vec!["Det::assess".into()],
            ..Config::default()
        };
        let d = flow(
            &[(
                "crates/x/src/lib.rs",
                r#"
                impl Det { pub fn assess(&self) -> f32 { stamp() } }
                fn stamp() -> f32 { let t = Instant::now(); 0.0 }
                fn unrelated() { let t = Instant::now(); }
                "#,
            )],
            &cfg,
        );
        let taints: Vec<&Finding> = d
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::TaintFlow)
            .collect();
        assert_eq!(taints.len(), 1, "{:#?}", d.findings);
        assert!(taints[0].message.contains("Det::assess"), "{taints:?}");
        assert_eq!(taints[0].witness.len(), 2, "{:?}", taints[0].witness);
        assert!(taints[0].witness[1].ends_with("::stamp"));
    }

    #[test]
    fn lock_cycle_is_detected_across_fns() {
        // f takes A then B; g takes B then A → cycle.
        let d = flow(
            &[(
                "crates/x/src/lib.rs",
                r#"
                fn f(a: &M, b: &M) { let ga = LOCK_A.lock(); let gb = LOCK_B.lock(); }
                fn g(a: &M, b: &M) { let gb = LOCK_B.lock(); let ga = LOCK_A.lock(); }
                "#,
            )],
            &Config::default(),
        );
        let cycles: Vec<&Finding> = d
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::LockCycle)
            .collect();
        assert!(!cycles.is_empty(), "{:#?}", d.findings);
        assert!(cycles[0].message.contains("cycle"), "{cycles:?}");
    }

    #[test]
    fn lock_across_locking_callee_is_reported() {
        let d = flow(
            &[(
                "crates/x/src/lib.rs",
                r#"
                fn outer() { let g = LOCK_A.lock(); helper(); }
                fn helper() { let h = LOCK_B.lock(); }
                "#,
            )],
            &Config::default(),
        );
        let hits: Vec<&Finding> = d
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::LockAcrossCall)
            .collect();
        assert_eq!(hits.len(), 1, "{:#?}", d.findings);
        assert!(hits[0].message.contains("LOCK_A"), "{hits:?}");
        assert!(hits[0].message.contains("LOCK_B"), "{hits:?}");
    }

    #[test]
    fn temporary_guards_do_not_hold_across_statements() {
        // `m.lock().unwrap().push(…);` releases at the `;` — the next
        // statement's call is not "under" the lock.
        let d = flow(
            &[(
                "crates/x/src/lib.rs",
                r#"
                fn outer() { LOCK_A.lock().unwrap().clear(); helper(); }
                fn helper() { let h = LOCK_B.lock(); }
                "#,
            )],
            &Config::default(),
        );
        assert!(
            !d.findings.iter().any(|f| f.rule == RuleId::LockAcrossCall),
            "{:#?}",
            d.findings
        );
    }

    #[test]
    fn reentrant_acquisition_is_a_self_deadlock() {
        let d = flow(
            &[(
                "crates/x/src/lib.rs",
                r#"
                fn outer() { let g = LOCK_A.lock(); helper(); }
                fn helper() { let h = LOCK_A.lock(); }
                "#,
            )],
            &Config::default(),
        );
        assert!(
            d.findings
                .iter()
                .any(|f| f.rule == RuleId::LockCycle && f.message.contains("self-deadlock")),
            "{:#?}",
            d.findings
        );
        assert!(
            d.findings
                .iter()
                .any(|f| f.rule == RuleId::LockAcrossCall && f.message.contains("deadlock")),
            "{:#?}",
            d.findings
        );
    }

    #[test]
    fn tape_purity_flags_transitive_tape_allocation() {
        let d = flow(
            &[(
                "crates/x/src/lib.rs",
                r#"
                impl Tape { pub fn push(&mut self) {} }
                impl Net {
                    fn forward_infer(&self) { self.helper(); }
                    fn helper(&self) { Tape::push(); }
                }
                impl CleanNet {
                    fn forward_infer(&self) { pure_math(); }
                }
                fn pure_math() {}
                "#,
            )],
            &Config::default(),
        );
        let hits: Vec<&Finding> = d
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::TapePurity)
            .collect();
        assert_eq!(hits.len(), 1, "{:#?}", d.findings);
        assert!(hits[0].message.contains("Net::forward_infer"), "{hits:?}");
        assert!(
            hits[0].witness.last().unwrap().ends_with("Tape::push"),
            "{:?}",
            hits[0].witness
        );
    }

    #[test]
    fn panic_surface_lists_reachable_panic_capable_fns_with_kinds() {
        let cfg = Config {
            hot_entry_points: vec!["Det::assess".into()],
            ..Config::default()
        };
        let (graph, parsed) = setup(&[(
            "crates/x/src/lib.rs",
            r#"
            impl Det { pub fn assess(&self) { risky(); clean(); } }
            fn risky(v: &[f32], n: usize) -> f32 { v[0] / v.len() as f32 + v.get(n).unwrap() }
            fn clean(a: f32, b: f32) -> f32 { a + b }
            fn cold() { panic!("unreachable from assess"); }
            "#,
        )]);
        let d = run(&graph, &parsed, &cfg);
        let names: Vec<&str> = d
            .panic_surface
            .iter()
            .map(|p| p.qualified.as_str())
            .collect();
        assert!(names.iter().any(|n| n.ends_with("::risky")), "{names:?}");
        assert!(!names.iter().any(|n| n.ends_with("::clean")), "{names:?}");
        assert!(!names.iter().any(|n| n.ends_with("::cold")), "{names:?}");
        let risky = d
            .panic_surface
            .iter()
            .find(|p| p.qualified.ends_with("::risky"))
            .unwrap();
        assert!(risky.kinds.contains(&"unwrap"), "{:?}", risky.kinds);
        assert!(risky.kinds.contains(&"index"), "{:?}", risky.kinds);
        assert!(risky.kinds.contains(&"div"), "{:?}", risky.kinds);
    }

    #[test]
    fn index_heuristic_skips_types_attributes_and_patterns() {
        let cfg = Config {
            hot_entry_points: vec!["entry".into()],
            ..Config::default()
        };
        let (graph, parsed) = setup(&[(
            "crates/x/src/lib.rs",
            r#"
            #[derive(Clone)]
            struct W { buf: [f32; 4] }
            fn entry(w: &W) -> f32 { let x: [f32; 2] = [0.0, 1.0]; iterate(w) }
            fn iterate(w: &W) -> f32 { w.buf.iter().sum() }
            "#,
        )]);
        let d = run(&graph, &parsed, &cfg);
        assert!(d.panic_surface.is_empty(), "{:#?}", d.panic_surface);
    }
}
