//! Human-readable and JSON rendering of findings. The JSON writer is
//! hand-rolled (the linter is dependency-free by design) and escapes
//! strings per RFC 8259.

use crate::rules::Finding;
use crate::Analysis;
use std::fmt::Write as _;

/// `path:line: [family/rule] message`, one per finding, plus a summary line.
pub fn human(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        let _ = writeln!(
            s,
            "{}:{}: [{}/{}] {}",
            f.file,
            f.line,
            f.rule.family(),
            f.rule.as_str(),
            f.message
        );
    }
    if findings.is_empty() {
        s.push_str("glint-lint: no findings\n");
    } else {
        let _ = writeln!(s, "glint-lint: {} finding(s)", findings.len());
    }
    s
}

/// `{"version":1,"count":N,"findings":[{file,line,rule,family,message}…]}`
pub fn json(findings: &[Finding]) -> String {
    let mut s = String::from("{\"version\":1,\"count\":");
    let _ = write!(s, "{}", findings.len());
    s.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":{},\"line\":{},\"rule\":{},\"family\":{},\"message\":{}",
            json_str(&f.file),
            f.line,
            json_str(f.rule.as_str()),
            json_str(f.rule.family()),
            json_str(&f.message)
        );
        if !f.witness.is_empty() {
            s.push_str(",\"witness\":[");
            for (j, hop) in f.witness.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(hop));
            }
            s.push(']');
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// The `BENCH_lint.json` v3 document: findings count, call-graph
/// statistics (with the *actionable* unresolved worklist — variant ctors
/// and std staples filtered out), the panic-surface certificate as a named
/// fn list, and the ranked inference-path allocation census with call-chain
/// evidence. Snapshotted at the repo root by CI; `--baseline` gates the
/// census *and* the panic surface against the committed copy.
pub fn bench_json(a: &Analysis) -> String {
    let mut s = String::from("{\"version\":3,\"findings\":{\"count\":");
    let _ = write!(s, "{}", a.findings.len());
    s.push_str("},\"graph\":{");
    let _ = write!(
        s,
        "\"files\":{},\"fns\":{},\"resolved_calls\":{},\"hot_fns\":{},\
         \"unresolved_total\":{},\"unresolved_raw_names\":{},\"unresolved_raw_calls\":{}",
        a.stats.files,
        a.stats.fns,
        a.stats.resolved_calls,
        a.stats.hot_fns,
        a.stats.unresolved.values().sum::<usize>(),
        a.stats.unresolved_raw_names,
        a.stats.unresolved_raw_calls,
    );
    s.push_str(",\"unresolved\":[");
    for (i, (name, count)) in a.stats.unresolved.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"name\":{},\"count\":{}}}", json_str(name), count);
    }
    s.push_str("]},\"panic_surface\":{");
    let _ = write!(s, "\"panic_fns\":{}", a.panic_surface.len());
    s.push_str(",\"fns\":[");
    for (i, p) in a.panic_surface.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"fn\":{},\"file\":{},\"line\":{},\"kinds\":[",
            json_str(&p.qualified),
            json_str(&p.file),
            p.line
        );
        for (j, k) in p.kinds.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&json_str(k));
        }
        s.push_str("]}");
    }
    s.push_str("]},\"census\":{");
    let _ = write!(
        s,
        "\"total_sites\":{},\"reachable_fns\":{}",
        a.census.total_sites(),
        a.census.reachable_fns
    );
    s.push_str(",\"by_kind\":{");
    for (i, (kind, count)) in a.census.by_kind.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}:{}", json_str(kind), count);
    }
    s.push_str("},\"sites\":[");
    for (i, site) in a.census.sites.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":{},\"line\":{},\"kind\":{},\"in_fn\":{}",
            json_str(&site.file),
            site.line,
            json_str(site.kind.as_str()),
            json_str(&site.in_fn)
        );
        if let Some(feat) = &site.cfg_feature {
            let _ = write!(s, ",\"cfg_feature\":{}", json_str(feat));
        }
        s.push_str(",\"chain\":[");
        for (j, link) in site.chain.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&json_str(link));
        }
        s.push_str("]}");
    }
    s.push_str("]}}");
    s
}

/// Extract `"total_sites":N` from a (committed) `BENCH_lint.json` without a
/// JSON parser — the linter stays dependency-free, and the field is written
/// by [`bench_json`] in exactly this shape.
pub fn baseline_total_sites(doc: &str) -> Option<usize> {
    baseline_field(doc, "total_sites")
}

/// Extract `"panic_fns":N` — the committed panic-surface size the ratchet
/// gates against.
pub fn baseline_panic_fns(doc: &str) -> Option<usize> {
    baseline_field(doc, "panic_fns")
}

fn baseline_field(doc: &str, field: &str) -> Option<usize> {
    let key = format!("\"{field}\":");
    let at = doc.find(&key)? + key.len();
    let digits: String = doc[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// `--explain <rule>` rendering: every finding for one rule with its
/// witness call chain, one hop per line. Interprocedural findings carry
/// the chain that makes the flow concrete (sink entry → … → source fn, or
/// lock-hold evidence); per-site findings just print their location.
pub fn explain(findings: &[Finding], rule: crate::rules::RuleId) -> String {
    let mut s = String::new();
    let matching: Vec<&Finding> = findings.iter().filter(|f| f.rule == rule).collect();
    let _ = writeln!(
        s,
        "{} finding(s) for [{}/{}]",
        matching.len(),
        rule.family(),
        rule.as_str()
    );
    for f in &matching {
        let _ = writeln!(s, "\n{}:{}: {}", f.file, f.line, f.message);
        for (i, hop) in f.witness.iter().enumerate() {
            let _ = writeln!(s, "  {}{}", "  ".repeat(i), hop);
        }
    }
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn json_escapes_and_counts() {
        let fs = vec![Finding {
            file: "a/b.rs".into(),
            line: 3,
            rule: RuleId::FloatEq,
            message: "has \"quotes\" and\nnewline".into(),
            witness: Vec::new(),
        }];
        let j = json(&fs);
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"rule\":\"float-eq\""));
    }

    #[test]
    fn empty_is_valid() {
        assert_eq!(json(&[]), "{\"version\":1,\"count\":0,\"findings\":[]}");
        assert!(human(&[]).contains("no findings"));
    }
}
