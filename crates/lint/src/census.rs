//! Allocation-site census over the inference fast path.
//!
//! ROADMAP item 2 (tape-free inference) starts from `BENCH_trace.json`'s
//! ~29.8k matrix allocations per 105-step run. This module turns that
//! dynamic counter into a *static work list*: every allocation expression
//! reachable over the call graph from the inference entry points
//! (`GlintDetector::{assess, try_assess, assess_batch}`), each with a
//! shortest call chain back to its entry point as evidence. The ranked
//! report is exported as `BENCH_lint.json` and snapshotted/gated by CI —
//! eliminating sites from the top of this list is exactly the allocation-
//! elimination milestone.
//!
//! A census site is *not* a lint finding: allocating is not a violation
//! today. The census exists so the next PR knows where the allocations
//! are and so CI notices when the fast path silently grows new ones.

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::syntax::FileSyntax;
use std::collections::{BTreeMap, BTreeSet};

/// What kind of allocation a site is. Order = report weight (heaviest
/// first): matrix buffers dominate the trace counters, `vec!`/`Vec::`
/// allocate directly, `to_vec`/`collect` copy, `clone` may be either.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllocKind {
    MatrixCtor,
    VecMacro,
    VecCtor,
    BoxNew,
    ToVec,
    Collect,
    Clone,
}

impl AllocKind {
    pub fn as_str(self) -> &'static str {
        match self {
            AllocKind::MatrixCtor => "matrix-ctor",
            AllocKind::VecMacro => "vec-macro",
            AllocKind::VecCtor => "vec-ctor",
            AllocKind::BoxNew => "box-new",
            AllocKind::ToVec => "to-vec",
            AllocKind::Collect => "collect",
            AllocKind::Clone => "clone",
        }
    }

    pub const ALL: &'static [AllocKind] = &[
        AllocKind::MatrixCtor,
        AllocKind::VecMacro,
        AllocKind::VecCtor,
        AllocKind::BoxNew,
        AllocKind::ToVec,
        AllocKind::Collect,
        AllocKind::Clone,
    ];
}

/// One allocation site on the inference fast path.
#[derive(Clone, Debug)]
pub struct CensusSite {
    pub file: String,
    pub line: u32,
    pub kind: AllocKind,
    /// Qualified name of the containing fn.
    pub in_fn: String,
    /// Feature gating the containing fn, if any.
    pub cfg_feature: Option<String>,
    /// Shortest call chain: inference entry → … → containing fn.
    pub chain: Vec<String>,
}

/// The full census report.
#[derive(Debug, Default)]
pub struct Census {
    /// Sites, ranked: heaviest kind first, then shortest chain, then
    /// file/line — a stable work list.
    pub sites: Vec<CensusSite>,
    /// Totals per kind (covers all `sites`).
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Number of distinct fns reachable from the inference entries.
    pub reachable_fns: usize,
}

impl Census {
    pub fn total_sites(&self) -> usize {
        self.sites.len()
    }
}

/// Run the census: walk every fn reachable from `inference_entry_points`
/// and record allocation expressions in its body. `files` supplies the
/// token streams the graph's body ranges index into.
pub fn run(graph: &CallGraph, inference_entry_points: &[String], files: &[FileSyntax]) -> Census {
    let parents = graph.parents_from(inference_entry_points);
    let reachable: BTreeSet<usize> = parents.keys().copied().collect();
    let mut sites: Vec<CensusSite> = Vec::new();
    for &i in &reachable {
        let f = &graph.fns[i];
        let Some((start, end)) = f.body else { continue };
        let Some(toks) = files
            .iter()
            .find(|fs| fs.path == f.file)
            .map(|fs| fs.toks.as_slice())
        else {
            continue;
        };
        let chain = graph.chain(&parents, i);
        for (idx, kind) in alloc_sites(toks, start, end) {
            sites.push(CensusSite {
                file: f.file.clone(),
                line: toks[idx].line,
                kind,
                in_fn: f.qualified(),
                cfg_feature: f.cfg_feature.clone(),
                chain: chain.clone(),
            });
        }
    }
    // Rank: kind weight (enum order), chain length, file, line.
    sites.sort_by(|a, b| {
        (a.kind, a.chain.len(), &a.file, a.line).cmp(&(b.kind, b.chain.len(), &b.file, b.line))
    });
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for s in &sites {
        *by_kind.entry(s.kind.as_str()).or_insert(0) += 1;
    }
    Census {
        sites,
        by_kind,
        reachable_fns: reachable.len(),
    }
}

/// Scan `[start, end)` of one fn body for allocation expressions.
/// Returns (token index, kind) pairs.
pub fn alloc_sites(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, AllocKind)> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let is_id = |i: usize, s: &str| {
        toks.get(i)
            .map(|t| t.kind == TokKind::Ident && t.text == s)
            .unwrap_or(false)
    };
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                // `Matrix::anything(` — every Matrix constructor/combinator
                // returns a fresh buffer in the current tape design.
                "Matrix"
                    if text(i + 1) == Some("::")
                        && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident) =>
                {
                    out.push((i, AllocKind::MatrixCtor));
                    i += 3;
                    continue;
                }
                "vec" if text(i + 1) == Some("!") => {
                    out.push((i, AllocKind::VecMacro));
                    i += 2;
                    continue;
                }
                "Vec"
                    if text(i + 1) == Some("::")
                        && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident) =>
                {
                    out.push((i, AllocKind::VecCtor));
                    i += 3;
                    continue;
                }
                "Box" if text(i + 1) == Some("::") && is_id(i + 2, "new") => {
                    out.push((i, AllocKind::BoxNew));
                    i += 3;
                    continue;
                }
                "clone" if text(i.wrapping_sub(1)) == Some(".") => {
                    out.push((i, AllocKind::Clone));
                }
                "to_vec" if text(i.wrapping_sub(1)) == Some(".") => {
                    out.push((i, AllocKind::ToVec));
                }
                "collect" if text(i.wrapping_sub(1)) == Some(".") => {
                    out.push((i, AllocKind::Collect));
                }
                _ => {}
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::syntax::FileSyntax;

    #[test]
    fn census_finds_sites_with_chains() {
        let src = r#"
            impl Det {
                pub fn assess(&self) { embed_stage(); }
            }
            fn embed_stage() { kernel(); }
            fn kernel() -> Matrix {
                let out = Matrix::zeros(2, 2);
                let buf = vec![0.0f32; 4];
                let c: Vec<f32> = buf.iter().map(|x| x + 1.0).collect();
                let d = c.clone();
                let _ = d.to_vec();
                out
            }
            fn cold() { let _ = Matrix::zeros(9, 9); }
        "#;
        let files = vec![FileSyntax::parse("crates/a/src/lib.rs", src)];
        let graph = CallGraph::build(&files);
        let census = run(&graph, &["Det::assess".to_string()], &files);
        assert_eq!(census.total_sites(), 5, "{:#?}", census.sites);
        // Ranked: matrix ctor first.
        assert_eq!(census.sites[0].kind, AllocKind::MatrixCtor);
        // Every chain starts at the entry point.
        for s in &census.sites {
            assert_eq!(
                s.chain.first().map(|c| c.as_str()),
                Some("glint_a::Det::assess"),
                "{s:?}"
            );
            assert_eq!(s.chain.last().map(|c| c.as_str()), Some(s.in_fn.as_str()));
        }
        // `cold` is unreachable from assess: its Matrix::zeros is absent.
        assert!(!census.sites.iter().any(|s| s.in_fn.ends_with("::cold")));
    }
}
