//! Lightweight syntax layer on top of the lexer: recognizes items
//! (`fn` / `impl` / `trait` / `mod`), their bodies, and the call expressions
//! inside them, producing a per-file symbol table the workspace call graph
//! ([`crate::callgraph`]) is built from.
//!
//! This is *not* a Rust parser. It understands exactly enough structure for
//! name-based call resolution:
//!
//! * item nesting (`mod`/`impl`/`trait` blocks, nested `fn`s) with the
//!   enclosing impl/trait type recorded as the method receiver;
//! * `#[cfg(test)]` items (marked, so test-only code neither triggers rules
//!   nor seeds hotness) and `#[cfg(feature = "…")]` items (the gating
//!   feature is recorded and reported — feature-gated code still
//!   participates in the graph because it may well be compiled);
//! * call expressions `f(…)`, `recv.method(…)`, `Qual::f(…)`, including
//!   turbofish (`collect::<Vec<_>>()`); macros (`name!`) are not calls.
//!
//! Everything else — expressions, types, closures — is skipped over
//! structurally (balanced delimiters) without being understood. Soundness
//! caveats live with the resolver in `callgraph.rs`.

use crate::lexer::{self, Lexed, Tok, TokKind};

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)` — a bare function call.
    Free,
    /// `recv.method(…)` — a method call on some receiver expression.
    /// `recv_ident` is the token just before the dot when it is a plain
    /// identifier (`None` for nested expressions like `a.b().c(…)`); the
    /// resolver uses it to spot `STATIC.load(…)`-style std atomic ops.
    /// `recv_base` is the ident one hop further out when the receiver is a
    /// two-segment chain — `self.l0.f(…)` records `recv_ident = l0`,
    /// `recv_base = self`, which lets the resolver look the field type up.
    Method {
        recv_ident: Option<String>,
        recv_base: Option<String>,
    },
    /// `Qual::f(…)` — the last path qualifier is recorded (`Matrix`,
    /// `par`, `Self`, `glint_tensor`, …).
    Path(String),
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub name: String,
    pub kind: CallKind,
    pub line: u32,
    /// Index of the callee-name token in the file's token stream — the
    /// lock-order analysis intersects call positions with held-lock
    /// regions, which are token ranges.
    pub tok: usize,
    /// True for a *reference* to a fn (`&construction::node_features`,
    /// `map(Self::helper)`) rather than a direct call — the value flows
    /// somewhere and is eventually invoked, so it is an edge too
    /// (fn-pointer under-approximation shrinks to bare-ident refs only).
    pub is_ref: bool,
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` self type, e.g. `Matrix` for
    /// `impl Matrix { fn zeros … }`. `None` for free functions.
    pub receiver: Option<String>,
    /// Parameter name → type (last identifier of the type at the param's
    /// top level: `ctx: &mut InferCtx` → `("ctx", "InferCtx")`). Destructured
    /// patterns are skipped. The resolver uses this as positive receiver
    /// evidence for `ctx.matmul(…)`-style calls.
    pub params: Vec<(String, String)>,
    /// Module path within the file (`mod` nesting), innermost last.
    pub module: Vec<String>,
    pub line: u32,
    /// Token-index range `[start, end)` of the body including braces,
    /// indices into the file's full token vector. `None` for bodiless
    /// declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` item (directly or via an enclosing mod).
    pub is_test: bool,
    /// Gating feature from an enclosing `#[cfg(feature = "…")]`, if any.
    pub cfg_feature: Option<String>,
    /// Call expressions in this fn's body, excluding nested fn bodies
    /// (those belong to the nested fn).
    pub calls: Vec<CallSite>,
    /// `for`-loop element bindings in the body: binding name →
    /// `"self.<field>"` or a bare local/param name. Receiver evidence for
    /// `for layer in &self.layers { layer.forward(…) }`.
    pub loop_elems: Vec<(String, String)>,
}

/// Parsed view of one source file.
#[derive(Debug)]
pub struct FileSyntax {
    pub path: String,
    /// The full token stream (NOT cfg(test)-stripped — body ranges index
    /// into it).
    pub toks: Vec<Tok>,
    pub comments: Vec<lexer::Comment>,
    pub fns: Vec<FnItem>,
    /// Token ranges of `#[cfg(test)]` items, for masking rule scans.
    pub test_ranges: Vec<(usize, usize)>,
    /// `struct Name { field: Type, … }` → field → type (last identifier).
    /// Tuple structs and unit structs contribute an empty field map.
    pub structs: Vec<(String, Vec<(String, String)>)>,
    /// Names declared by `trait …` items. The resolver must NOT narrow a
    /// method call to a trait receiver: that would keep only the bodiless
    /// declarations / default bodies and hide every implementor.
    pub traits: Vec<String>,
}

impl FileSyntax {
    /// Lex and parse one source file.
    pub fn parse(path: &str, src: &str) -> FileSyntax {
        let Lexed { toks, comments } = lexer::lex(src);
        let test_ranges = lexer::cfg_test_ranges(&toks);
        let mut out = ParseOut::default();
        let ctx = Ctx {
            receiver: None,
            module: Vec::new(),
            is_test: false,
            cfg_feature: None,
        };
        parse_items(&toks, 0, toks.len(), &ctx, &mut out);
        let ParseOut {
            mut fns,
            structs,
            traits,
        } = out;
        // Attach call sites, excluding nested fn body sub-ranges.
        let nested: Vec<(usize, usize)> = fns.iter().filter_map(|f| f.body).collect();
        for f in &mut fns {
            if let Some((start, end)) = f.body {
                let inner: Vec<(usize, usize)> = nested
                    .iter()
                    .copied()
                    .filter(|&(s, e)| s > start && e <= end && (s, e) != (start, end))
                    .collect();
                f.calls = extract_calls(&toks, start, end, &inner);
                f.loop_elems = loop_bindings(&toks, start, end);
            }
        }
        FileSyntax {
            path: path.to_string(),
            toks,
            comments,
            fns,
            test_ranges,
            structs,
            traits,
        }
    }
}

/// Accumulated item-level facts from one parse walk.
#[derive(Default)]
struct ParseOut {
    fns: Vec<FnItem>,
    structs: Vec<(String, Vec<(String, String)>)>,
    traits: Vec<String>,
}

#[derive(Clone)]
struct Ctx {
    receiver: Option<String>,
    module: Vec<String>,
    is_test: bool,
    cfg_feature: Option<String>,
}

/// What a `#[…]` attribute told us about the item it decorates.
#[derive(Default, Clone)]
struct AttrInfo {
    is_test: bool,
    feature: Option<String>,
}

/// Parse one attribute starting at `#` (index `i`); returns info + index
/// just past the closing `]`. Detects `test` and `feature = "…"` anywhere
/// inside a `cfg(…)` / `cfg_attr(…)` attribute, so `#[cfg(all(test, …))]`
/// also counts as test-gated.
fn parse_attr(toks: &[Tok], i: usize, info: &mut AttrInfo) -> usize {
    let end = skip_balanced(toks, i + 1, "[", "]");
    let body = &toks[i..end.min(toks.len())];
    let is_cfg = body
        .iter()
        .any(|t| t.kind == TokKind::Ident && (t.text == "cfg" || t.text == "cfg_attr"));
    if is_cfg {
        for (k, t) in body.iter().enumerate() {
            if t.kind == TokKind::Ident && t.text == "test" {
                info.is_test = true;
            }
            if t.kind == TokKind::Ident && t.text == "feature" {
                // `feature = "name"`
                if body.get(k + 1).map(|t| t.text.as_str()) == Some("=") {
                    if let Some(v) = body.get(k + 2).filter(|t| t.kind == TokKind::Str) {
                        info.feature = Some(v.text.clone());
                    }
                }
            }
        }
    }
    end
}

/// Idents that may legally sit between an attribute and its item keyword
/// without detaching the attribute.
const ITEM_QUALIFIERS: &[&str] = &[
    "pub", "crate", "super", "self", "in", "const", "unsafe", "async", "extern", "default",
];

/// Scan `[from, to)` for items, honouring `mod`/`impl`/`trait` nesting.
fn parse_items(toks: &[Tok], from: usize, to: usize, ctx: &Ctx, out: &mut ParseOut) {
    let mut i = from;
    let mut pending = AttrInfo::default();
    while i < to {
        let t = &toks[i];
        // Attributes: accumulate onto `pending` for the next item.
        if t.text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            i = parse_attr(toks, i, &mut pending);
            continue;
        }
        if t.kind != TokKind::Ident {
            // Qualifier parens (`pub(crate)`) keep the pending attribute.
            if !(t.text == "(" || t.text == ")") {
                pending = AttrInfo::default();
            }
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                // `fn(` is a function-pointer type, not an item.
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    pending = AttrInfo::default();
                    i += 1;
                    continue;
                };
                let (params, body, next) = parse_fn_after_name(toks, i + 2, to);
                out.fns.push(FnItem {
                    name: name_tok.text.clone(),
                    receiver: ctx.receiver.clone(),
                    params,
                    module: ctx.module.clone(),
                    line: name_tok.line,
                    body,
                    is_test: ctx.is_test || pending.is_test,
                    cfg_feature: pending.feature.clone().or_else(|| ctx.cfg_feature.clone()),
                    calls: Vec::new(),
                    loop_elems: Vec::new(),
                });
                // Recurse into the body for nested fns.
                if let Some((bs, be)) = body {
                    let inner = Ctx {
                        receiver: None,
                        module: ctx.module.clone(),
                        is_test: ctx.is_test || pending.is_test,
                        cfg_feature: pending.feature.clone().or_else(|| ctx.cfg_feature.clone()),
                    };
                    parse_items(toks, bs + 1, be.saturating_sub(1), &inner, out);
                }
                pending = AttrInfo::default();
                i = next;
            }
            "struct" if !(ctx.is_test || pending.is_test) => {
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    pending = AttrInfo::default();
                    i += 1;
                    continue;
                };
                let mut j = i + 2;
                if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
                    j = skip_angles(toks, j, to);
                }
                // `struct S;` / `struct S(…);` / `struct S { fields }` /
                // `struct S where … { fields }`.
                while j < to && !matches!(toks[j].text.as_str(), "{" | "(" | ";") {
                    j += 1;
                }
                let mut fields = Vec::new();
                let next = match toks.get(j).map(|t| t.text.as_str()) {
                    Some("{") => {
                        let be = skip_balanced(toks, j, "{", "}");
                        fields = parse_field_list(toks, j + 1, be.saturating_sub(1));
                        be
                    }
                    Some("(") => skip_balanced(toks, j, "(", ")"),
                    _ => j + 1,
                };
                out.structs.push((name_tok.text.clone(), fields));
                pending = AttrInfo::default();
                i = next;
            }
            "impl" | "trait" => {
                let is_impl = t.text == "impl";
                let (self_ty, body_start) = parse_impl_header(toks, i + 1, to, is_impl);
                if !is_impl {
                    if let Some(name) = &self_ty {
                        out.traits.push(name.clone());
                    }
                }
                let Some(bs) = body_start else {
                    pending = AttrInfo::default();
                    i += 1;
                    continue;
                };
                let be = skip_balanced(toks, bs, "{", "}");
                let inner = Ctx {
                    receiver: self_ty,
                    module: ctx.module.clone(),
                    is_test: ctx.is_test || pending.is_test,
                    cfg_feature: pending.feature.clone().or_else(|| ctx.cfg_feature.clone()),
                };
                parse_items(toks, bs + 1, be.saturating_sub(1), &inner, out);
                pending = AttrInfo::default();
                i = be;
            }
            "mod" => {
                let name = toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                match (name, toks.get(i + 2).map(|t| t.text.as_str())) {
                    (Some(name), Some("{")) => {
                        let bs = i + 2;
                        let be = skip_balanced(toks, bs, "{", "}");
                        let mut module = ctx.module.clone();
                        module.push(name);
                        let inner = Ctx {
                            receiver: None,
                            module,
                            is_test: ctx.is_test || pending.is_test,
                            cfg_feature: pending
                                .feature
                                .clone()
                                .or_else(|| ctx.cfg_feature.clone()),
                        };
                        parse_items(toks, bs + 1, be.saturating_sub(1), &inner, out);
                        pending = AttrInfo::default();
                        i = be;
                    }
                    _ => {
                        pending = AttrInfo::default();
                        i += 2; // `mod name;` — out-of-line, nothing to parse
                    }
                }
            }
            kw if ITEM_QUALIFIERS.contains(&kw) => {
                i += 1; // qualifiers keep the pending attribute
            }
            _ => {
                pending = AttrInfo::default();
                i += 1;
            }
        }
    }
}

/// Keywords/punctuation that cannot be the "type name" of a param or field.
const TYPE_NOISE: &[&str] = &["mut", "dyn", "impl", "ref", "const", "as", "where"];

/// Parse `name: Type` entries from a comma-separated list in `[from, to)`
/// (fn argument list or struct field block). Returns (name, type-last-ident)
/// pairs; destructured patterns and `self` receivers contribute nothing.
fn parse_field_list(toks: &[Tok], from: usize, to: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut entry_start = from;
    let mut i = from;
    let to = to.min(toks.len());
    let flush = |s: usize, e: usize, out: &mut Vec<(String, String)>| {
        // Entry shape: `…name : type-tokens` with the `:` at entry depth.
        let mut colon = None;
        let mut d = 0i32;
        for (j, tok) in toks.iter().enumerate().take(e).skip(s) {
            match tok.text.as_str() {
                "(" | "[" | "{" | "<" => d += 1,
                ")" | "]" | "}" | ">" => d -= 1,
                "<<" => d += 2,
                ">>" => d -= 2,
                ":" if d == 0 && colon.is_none() => colon = Some(j),
                _ => {}
            }
        }
        let Some(c) = colon else { return };
        // Name: single ident just before the colon, not preceded by another
        // ident/`.` (rules out `pub(crate) name` false splits are fine; rules
        // out destructured `Foo { a }` since `}` precedes the colon only in
        // nested depth, and tuple patterns have no top-level colon).
        let Some(name_tok) = c.checked_sub(1).map(|j| &toks[j]) else {
            return;
        };
        if name_tok.kind != TokKind::Ident || name_tok.text == "self" {
            return;
        }
        let ty = toks[c + 1..e]
            .iter()
            .rfind(|t| t.kind == TokKind::Ident && !TYPE_NOISE.contains(&t.text.as_str()));
        if let Some(ty) = ty {
            out.push((name_tok.text.clone(), ty.text.clone()));
        }
    };
    while i < to {
        match toks[i].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "," if depth <= 0 => {
                flush(entry_start, i, &mut out);
                entry_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    flush(entry_start, to, &mut out);
    out
}

/// Parsed fn signature tail: (params, body token range, resume index).
type FnSigTail = (Vec<(String, String)>, Option<(usize, usize)>, usize);

/// After `fn name`, skip generics + args + return type; return the parsed
/// params, the body range (if any), and the index to continue scanning from.
fn parse_fn_after_name(toks: &[Tok], mut i: usize, to: usize) -> FnSigTail {
    // Optional generic params.
    if toks.get(i).map(|t| t.text.as_str()) == Some("<") {
        i = skip_angles(toks, i, to);
    }
    // Argument list.
    let mut params = Vec::new();
    if toks.get(i).map(|t| t.text.as_str()) == Some("(") {
        let close = skip_balanced(toks, i, "(", ")");
        params = parse_field_list(toks, i + 1, close.saturating_sub(1));
        i = close;
    }
    // Return type / where clause: scan to `{` or `;` at angle-depth 0.
    let mut angle = 0i32;
    while i < to {
        match toks[i].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "{" if angle <= 0 => {
                let end = skip_balanced(toks, i, "{", "}");
                return (params, Some((i, end)), end);
            }
            ";" if angle <= 0 => return (params, None, i + 1),
            _ => {}
        }
        i += 1;
    }
    (params, None, i)
}

/// Parse an `impl`/`trait` header starting just past the keyword. Returns
/// the self-type name (last path segment at angle-depth 0, after `for` if
/// present) and the index of the opening `{`.
fn parse_impl_header(
    toks: &[Tok],
    mut i: usize,
    to: usize,
    is_impl: bool,
) -> (Option<String>, Option<usize>) {
    if toks.get(i).map(|t| t.text.as_str()) == Some("<") {
        i = skip_angles(toks, i, to);
    }
    let mut self_ty: Option<String> = None;
    let mut angle = 0i32;
    // After `:` in a trait header (`trait Scorer: Send + Sync`), idents are
    // supertraits, not the trait's own name.
    let mut frozen = false;
    while i < to {
        let t = &toks[i];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "{" if angle <= 0 => return (self_ty, Some(i)),
            ";" if angle <= 0 => return (self_ty, None), // `impl Trait for T;`-ish
            "for" if angle <= 0 && is_impl => self_ty = None, // real type follows
            ":" if angle <= 0 && !is_impl => frozen = true,
            "where" if angle <= 0 => {
                // where-clause: self type is already known; find the `{`.
                while i < to && toks[i].text != "{" {
                    i += 1;
                }
                return (self_ty, (i < to).then_some(i));
            }
            _ if t.kind == TokKind::Ident && angle <= 0 && !frozen => {
                self_ty = Some(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (self_ty, None)
}

/// Skip a balanced `<…>` generic group starting at `<`.
fn skip_angles(toks: &[Tok], mut i: usize, to: usize) -> usize {
    let mut depth = 0i32;
    while i < to {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Starting with `toks[open_idx] == open`, index just past the matching
/// `close`. Tolerates unbalanced input by running to `toks.len()`.
fn skip_balanced(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        if toks[j].text == open {
            depth += 1;
        } else if toks[j].text == close {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "else",
    "break", "continue", "where", "impl", "dyn",
];

/// Extract call sites from `[start, end)`, skipping `exclude` sub-ranges
/// (nested fn bodies).
/// Token index of the `[` opening the group that closes at `close` (which
/// must point at `]`), bounded below by `floor`.
fn open_of(toks: &[Tok], close: usize, floor: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close + 1;
    while j > floor {
        j -= 1;
        match toks[j].text.as_str() {
            "]" => depth += 1,
            "[" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Element-type evidence from `for` loops in `[start, end)`. Each entry is
/// binding name → source: `"self.<field>"` for loops over a field of
/// `self`, or a bare local/param name the resolver chases one more hop.
/// Recognized shapes (anything else contributes nothing):
///
/// * `for x in [&[mut]] <src> { … }`
/// * `for x in <src>.iter()/.iter_mut()/.into_iter() { … }`
/// * `for (i, x) in <src>.iter().enumerate() { … }` — the second tuple
///   element binds (the first is the index).
fn loop_bindings(toks: &[Tok], start: usize, end: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    let id = |j: usize| {
        toks.get(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    let txt = |j: usize| toks.get(j).map(|t| t.text.as_str());
    let mut i = start;
    while i < end {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "for") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut tuple = false;
        let binding: Option<String> = if txt(j) == Some("(")
            && id(j + 1).is_some()
            && txt(j + 2) == Some(",")
            && id(j + 3).is_some()
            && txt(j + 4) == Some(")")
        {
            tuple = true;
            let b = id(j + 3).map(|s| s.to_string());
            j += 5;
            b
        } else if let Some(b) = id(j) {
            j += 1;
            Some(b.to_string())
        } else {
            None
        };
        let Some(binding) = binding else {
            i += 1;
            continue;
        };
        if txt(j) != Some("in") {
            i += 1;
            continue;
        }
        j += 1;
        while matches!(txt(j), Some("&") | Some("mut")) {
            j += 1;
        }
        let src: Option<String> =
            if id(j) == Some("self") && txt(j + 1) == Some(".") && id(j + 2).is_some() {
                let f = format!("self.{}", id(j + 2).unwrap());
                j += 3;
                Some(f)
            } else if let Some(l) = id(j) {
                j += 1;
                Some(l.to_string())
            } else {
                None
            };
        let Some(src) = src else {
            i += 1;
            continue;
        };
        let mut enumerated = false;
        while txt(j) == Some(".")
            && matches!(
                id(j + 1),
                Some("iter") | Some("iter_mut") | Some("into_iter") | Some("enumerate")
            )
            && txt(j + 2) == Some("(")
            && txt(j + 3) == Some(")")
        {
            if id(j + 1) == Some("enumerate") {
                enumerated = true;
            }
            j += 4;
        }
        if txt(j) == Some("{") && (!tuple || enumerated) {
            out.push((binding, src));
        }
        i = j;
    }
    out
}

fn extract_calls(
    toks: &[Tok],
    start: usize,
    end: usize,
    exclude: &[(usize, usize)],
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = start;
    'outer: while i < end.min(toks.len()) {
        for &(s, e) in exclude {
            if i >= s && i < e {
                i = e;
                continue 'outer;
            }
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // `fn name(` is a nested declaration header, not a call.
        if i > start && toks[i - 1].text == "fn" {
            i += 1;
            continue;
        }
        // `name!` is a macro, not a call (its argument tokens still get
        // scanned on later iterations).
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("!") {
            i += 2;
            continue;
        }
        // Call shape: ident `(` — or ident `::` `<…>` `(` (turbofish).
        let mut after = i + 1;
        if toks.get(after).map(|t| t.text.as_str()) == Some("::")
            && toks.get(after + 1).map(|t| t.text.as_str()) == Some("<")
        {
            after = skip_angles(toks, after + 1, end);
        }
        let is_call = toks.get(after).map(|t| t.text.as_str()) == Some("(");
        if !is_call {
            // Fn *reference*: `Qual::name` not followed by `(` where `name`
            // is snake_case — `&construction::node_features` passed as a
            // callback, `map(Self::helper)`. The value is a fn pointer that
            // will be invoked, so it is an edge. Uppercase names (enum
            // variants, types, constants: `fmt::Result`, `Level::Warn`) and
            // further path segments (`a::b::c` — only the last counts) are
            // not references.
            let lowercase_start = t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase());
            let next_is_path = toks.get(i + 1).map(|t| t.text.as_str()) == Some("::");
            if lowercase_start
                && !next_is_path
                && i.checked_sub(1).map(|p| toks[p].text.as_str()) == Some("::")
            {
                if let Some(q) = i
                    .checked_sub(2)
                    .map(|q| &toks[q])
                    .filter(|q| q.kind == TokKind::Ident)
                {
                    out.push(CallSite {
                        name: t.text.clone(),
                        kind: CallKind::Path(q.text.clone()),
                        line: t.line,
                        tok: i,
                        is_ref: true,
                    });
                }
            }
            i += 1;
            continue;
        }
        let kind = match i.checked_sub(1).map(|p| toks[p].text.as_str()) {
            Some(".") => {
                let ident_at = |j: Option<usize>| {
                    j.map(|r| &toks[r])
                        .filter(|r| r.kind == TokKind::Ident)
                        .map(|r| r.text.clone())
                };
                // `base.field[idx].method(…)` — the receiver ends in an
                // index group; walk back over the balanced `[…]` so the
                // field still provides type evidence (`self.pools[d].f(…)`).
                let mut recv_pos = i.checked_sub(2);
                if recv_pos.map(|p| toks[p].text.as_str()) == Some("]") {
                    recv_pos = open_of(toks, i - 2, start).and_then(|o| o.checked_sub(1));
                }
                let recv_ident = ident_at(recv_pos);
                // `base.field.method(…)` — record `base` so the resolver can
                // consult struct field types (`self.l0.forward_infer(…)`).
                let recv_base = if recv_ident.is_some()
                    && recv_pos
                        .and_then(|p| p.checked_sub(1))
                        .map(|p| toks[p].text.as_str())
                        == Some(".")
                {
                    ident_at(recv_pos.and_then(|p| p.checked_sub(2)))
                } else {
                    None
                };
                CallKind::Method {
                    recv_ident,
                    recv_base,
                }
            }
            Some("::") => {
                let qual = i
                    .checked_sub(2)
                    .map(|q| &toks[q])
                    .filter(|q| q.kind == TokKind::Ident)
                    .map(|q| q.text.clone());
                match qual {
                    Some(q) => CallKind::Path(q),
                    // `<T as Trait>::f(…)` or `>::f(…)` — treat as method-like
                    // name match.
                    None => CallKind::Method {
                        recv_ident: None,
                        recv_base: None,
                    },
                }
            }
            _ => CallKind::Free,
        };
        out.push(CallSite {
            name: t.text.clone(),
            kind,
            line: t.line,
            tok: i,
            is_ref: false,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(fs: &'a FileSyntax, name: &str) -> &'a FnItem {
        fs.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found in {:?}", fs.fns))
    }

    #[test]
    fn free_fns_and_methods_are_recognized() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            pub fn free_one(x: usize) -> usize { helper(x) }
            fn helper(x: usize) -> usize { x + 1 }
            pub struct Widget { n: usize }
            impl Widget {
                pub fn new(n: usize) -> Self { Self { n } }
                fn tick(&mut self) { self.bump(); free_one(self.n); }
                fn bump(&mut self) { self.n += 1 }
            }
            "#,
        );
        assert_eq!(fs.fns.len(), 5);
        assert_eq!(find(&fs, "tick").receiver.as_deref(), Some("Widget"));
        assert!(find(&fs, "free_one").receiver.is_none());
        let tick = find(&fs, "tick");
        let names: Vec<_> = tick.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["bump", "free_one"]);
        assert_eq!(
            tick.calls[0].kind,
            CallKind::Method {
                recv_ident: Some("self".into()),
                recv_base: None,
            }
        );
        assert_eq!(tick.calls[1].kind, CallKind::Free);
    }

    #[test]
    fn params_struct_fields_and_traits_are_recorded() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            pub struct GcnModel { l0: GcnLayer, l1: GcnLayer, cfg: ModelConfig }
            pub struct Unit;
            pub struct Pair(f32, f32);
            pub trait GraphModel: Send + Sync {
                fn forward_infer(&self, ctx: &mut InferCtx, g: &PreparedGraph) -> f32;
            }
            fn go(ctx: &mut InferCtx, v: Vec<f32>, (a, b): (f32, f32)) {
                ctx.matmul(v);
                self.l0.forward_infer(ctx);
            }
            "#,
        );
        let (name, fields) = &fs.structs[0];
        assert_eq!(name, "GcnModel");
        assert_eq!(
            fields,
            &vec![
                ("l0".to_string(), "GcnLayer".to_string()),
                ("l1".to_string(), "GcnLayer".to_string()),
                ("cfg".to_string(), "ModelConfig".to_string()),
            ]
        );
        assert_eq!(fs.structs.len(), 3);
        assert!(fs.structs[1].1.is_empty() && fs.structs[2].1.is_empty());
        assert_eq!(fs.traits, vec!["GraphModel".to_string()]);
        // Trait name, not the supertrait, is the method receiver.
        assert_eq!(
            find(&fs, "forward_infer").receiver.as_deref(),
            Some("GraphModel")
        );
        let go = find(&fs, "go");
        // `self` and destructured patterns contribute no param entries.
        assert_eq!(
            go.params,
            vec![
                ("ctx".to_string(), "InferCtx".to_string()),
                ("v".to_string(), "f32".to_string()),
            ]
        );
        assert_eq!(
            go.calls[0].kind,
            CallKind::Method {
                recv_ident: Some("ctx".into()),
                recv_base: None,
            }
        );
        assert_eq!(
            go.calls[1].kind,
            CallKind::Method {
                recv_ident: Some("l0".into()),
                recv_base: Some("self".into()),
            }
        );
    }

    #[test]
    fn path_fn_references_are_edges_but_types_and_variants_are_not() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            fn go() -> fmt::Result {
                register(&crate::construction::node_features);
                let xs: Vec<f32> = ys.iter().map(f32::abs).collect();
                let level = Level::Warn;
                helper(plain_ident);
            }
            "#,
        );
        let go = find(&fs, "go");
        let refs: Vec<(&str, &CallKind)> = go
            .calls
            .iter()
            .filter(|c| c.is_ref)
            .map(|c| (c.name.as_str(), &c.kind))
            .collect();
        assert!(refs.contains(&("node_features", &CallKind::Path("construction".into()))));
        assert!(refs.contains(&("abs", &CallKind::Path("f32".into()))));
        // `Level::Warn` (variant), `fmt::Result` (type), and bare idents are
        // not reference sites.
        assert_eq!(refs.len(), 2, "{refs:?}");
    }

    #[test]
    fn trait_impls_resolve_the_self_type_after_for() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            impl fmt::Display for TrainError {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }
            }
            impl<C: Model, E: Model> Detector<C, E> {
                pub fn assess(&self) -> f32 { self.inner::<f32>() }
            }
            trait Scorer {
                fn score(&self) -> f32;
                fn scaled(&self) -> f32 { self.score() * 2.0 }
            }
            "#,
        );
        assert_eq!(find(&fs, "fmt").receiver.as_deref(), Some("TrainError"));
        assert_eq!(find(&fs, "assess").receiver.as_deref(), Some("Detector"));
        assert_eq!(find(&fs, "score").receiver.as_deref(), Some("Scorer"));
        assert!(find(&fs, "score").body.is_none(), "bodiless trait decl");
        assert!(find(&fs, "scaled").body.is_some());
    }

    #[test]
    fn cfg_test_and_feature_attrs_mark_items() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                fn helper_in_tests() {}
                #[test]
                fn a_test() { helper_in_tests() }
            }
            #[cfg(feature = "strict")]
            fn gated() {}
            #[cfg(all(test, feature = "x"))]
            fn both() {}
            "#,
        );
        assert!(!find(&fs, "lib_code").is_test);
        assert!(find(&fs, "helper_in_tests").is_test);
        assert!(find(&fs, "a_test").is_test);
        assert_eq!(find(&fs, "gated").cfg_feature.as_deref(), Some("strict"));
        assert!(!find(&fs, "gated").is_test);
        assert!(find(&fs, "both").is_test);
    }

    #[test]
    fn path_calls_and_turbofish() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            fn go(v: Vec<f32>) -> Vec<f32> {
                let m = Matrix::zeros(2, 2);
                let s: Vec<f32> = v.iter().map(f32::abs).collect::<Vec<_>>();
                par::matmul(&m, &m);
                Self::helper();
                vec![1.0; 3];
                s
            }
            "#,
        );
        let go = find(&fs, "go");
        let paths: Vec<(String, CallKind)> = go
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.kind.clone()))
            .collect();
        assert!(paths.contains(&("zeros".into(), CallKind::Path("Matrix".into()))));
        assert!(paths
            .iter()
            .any(|(n, k)| n == "collect" && matches!(k, CallKind::Method { .. })));
        assert!(paths.contains(&("matmul".into(), CallKind::Path("par".into()))));
        assert!(paths.contains(&("helper".into(), CallKind::Path("Self".into()))));
        // `vec!` is a macro, not a call
        assert!(!paths.iter().any(|(n, _)| n == "vec"));
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            fn outer() {
                fn inner() { deep_call(); }
                outer_call();
            }
            "#,
        );
        let outer_calls: Vec<_> = find(&fs, "outer")
            .calls
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(outer_calls, ["outer_call"]);
        let inner_calls: Vec<_> = find(&fs, "inner")
            .calls
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(inner_calls, ["deep_call"]);
    }

    #[test]
    fn modules_nest_into_the_symbol_path() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            mod par {
                pub fn matmul() {}
                mod detail { pub fn kernel() {} }
            }
            "#,
        );
        assert_eq!(find(&fs, "matmul").module, vec!["par".to_string()]);
        assert_eq!(
            find(&fs, "kernel").module,
            vec!["par".to_string(), "detail".to_string()]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let fs = FileSyntax::parse("x.rs", "fn real(f: fn(usize) -> usize) -> usize { f(1) }");
        assert_eq!(fs.fns.len(), 1);
        assert_eq!(fs.fns[0].name, "real");
    }

    #[test]
    fn where_clauses_and_generic_returns_do_not_derail_bodies() {
        let fs = FileSyntax::parse(
            "x.rs",
            r#"
            pub fn ordered_map<T, F>(n: usize, f: F) -> Vec<T>
            where
                F: Fn(usize) -> T + Sync,
                T: Send,
            {
                run(n, f)
            }
            "#,
        );
        let f = find(&fs, "ordered_map");
        assert!(f.body.is_some());
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "run");
    }
}
