//! Rules enforcing the workspace invariants, plus the suppression-pragma
//! machinery.
//!
//! Four invariant families (see DESIGN.md "Static analysis architecture"):
//!
//! * **determinism** — `hash-collection`, `wall-clock`, `entropy-rng`
//!   (path-scoped: deterministic crates / non-bench code);
//! * **NaN-safety** — `partial-cmp-unwrap`, `float-cmp-order`, `float-eq`
//!   (everywhere);
//! * **panic-safety** — `hot-unwrap`, `hot-panic`, `hot-index`,
//!   `catch-unwind`;
//! * **concurrency** — `hot-atomic-ordering`, `hot-lock`.
//!
//! The `hot-*` rules are *reachability*-scoped: a region is hot when its
//! function is reachable over the workspace call graph from the entry
//! points in [`Config::hot_entry_points`] (kernels, `GlintDetector`
//! serving methods, trainer step functions). There is no hand-maintained
//! hot-file list — moving a hot helper to a new module changes nothing,
//! because hotness follows the call graph, not the file layout.
//!
//! A finding on line `L` is suppressed by a justified pragma on line `L` or
//! `L-1`:
//!
//! ```text
//! // glint-lint: allow(rule-id, other-rule) — why this site is sound
//! ```
//!
//! The justification after the dash is mandatory; a pragma without one (or
//! naming an unknown rule) is itself reported under the `pragma` rule. A
//! well-formed pragma that suppresses nothing is reported under
//! `unused-allow` — stale justifications cannot accumulate.

use crate::lexer::{Comment, Tok, TokKind};

/// Stable rule identifiers (kebab-case, used in reports and pragmas).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    HashCollection,
    WallClock,
    EntropyRng,
    TaintFlow,
    PartialCmpUnwrap,
    FloatCmpOrder,
    FloatEq,
    HotUnwrap,
    HotPanic,
    HotIndex,
    CatchUnwind,
    HotAtomicOrdering,
    HotLock,
    LockCycle,
    LockAcrossCall,
    TapePurity,
    Pragma,
    UnusedAllow,
}

impl RuleId {
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::HashCollection => "hash-collection",
            RuleId::WallClock => "wall-clock",
            RuleId::EntropyRng => "entropy-rng",
            RuleId::TaintFlow => "taint-flow",
            RuleId::PartialCmpUnwrap => "partial-cmp-unwrap",
            RuleId::FloatCmpOrder => "float-cmp-order",
            RuleId::FloatEq => "float-eq",
            RuleId::HotUnwrap => "hot-unwrap",
            RuleId::HotPanic => "hot-panic",
            RuleId::HotIndex => "hot-index",
            RuleId::CatchUnwind => "catch-unwind",
            RuleId::HotAtomicOrdering => "hot-atomic-ordering",
            RuleId::HotLock => "hot-lock",
            RuleId::LockCycle => "lock-cycle",
            RuleId::LockAcrossCall => "lock-across-call",
            RuleId::TapePurity => "tape-purity",
            RuleId::Pragma => "pragma",
            RuleId::UnusedAllow => "unused-allow",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }

    /// Invariant family, for reports.
    pub fn family(self) -> &'static str {
        match self {
            RuleId::HashCollection | RuleId::WallClock | RuleId::EntropyRng | RuleId::TaintFlow => {
                "determinism"
            }
            RuleId::PartialCmpUnwrap | RuleId::FloatCmpOrder | RuleId::FloatEq => "nan-safety",
            RuleId::HotUnwrap | RuleId::HotPanic | RuleId::HotIndex | RuleId::CatchUnwind => {
                "panic-safety"
            }
            RuleId::HotAtomicOrdering
            | RuleId::HotLock
            | RuleId::LockCycle
            | RuleId::LockAcrossCall => "concurrency",
            RuleId::TapePurity => "purity",
            RuleId::Pragma | RuleId::UnusedAllow => "meta",
        }
    }
}

/// Every rule, in report order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::HashCollection,
    RuleId::WallClock,
    RuleId::EntropyRng,
    RuleId::TaintFlow,
    RuleId::PartialCmpUnwrap,
    RuleId::FloatCmpOrder,
    RuleId::FloatEq,
    RuleId::HotUnwrap,
    RuleId::HotPanic,
    RuleId::HotIndex,
    RuleId::CatchUnwind,
    RuleId::HotAtomicOrdering,
    RuleId::HotLock,
    RuleId::LockCycle,
    RuleId::LockAcrossCall,
    RuleId::TapePurity,
    RuleId::Pragma,
    RuleId::UnusedAllow,
];

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
    /// Interprocedural findings carry a witness call chain (entry → … →
    /// site); per-site findings leave this empty. Rendered by
    /// `glint-lint --explain <rule>`.
    pub witness: Vec<String>,
}

/// Which parts of the workspace each rule family applies to. Paths are
/// workspace-relative with `/` separators; entry points are fn specs
/// (`name`, `Type::method`, or `Type::*`) resolved against the call graph.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path prefixes where `hash-collection` applies: crates whose library
    /// code must be insertion-order independent.
    pub deterministic_prefixes: Vec<String>,
    /// Path prefixes exempt from `wall-clock` / `entropy-rng` (benchmarks
    /// time things by design).
    pub clock_exempt_prefixes: Vec<String>,
    /// Hot entry points: the panic-safety and concurrency `hot-*` rules
    /// apply to every fn reachable from these over the call graph.
    pub hot_entry_points: Vec<String>,
    /// Inference entry points: the allocation census walks the subgraph
    /// reachable from these (the serving fast path).
    pub inference_entry_points: Vec<String>,
    /// Fn specs opted into `hot-index` (kernels audited to use
    /// iterators/`split_at_mut` instead of per-element indexing).
    pub no_index_fns: Vec<String>,
    /// Exact files allowed to use `catch_unwind`: the designated graceful-
    /// degradation layer, where containing a panic to quarantine one graph
    /// is the point. Everywhere else, swallowing panics hides bugs.
    pub degradation_files: Vec<String>,
    /// Determinism-taint sinks: fn specs whose outputs must not depend on
    /// wall clocks, OS entropy, or hash-iteration order. The taint pass
    /// reports every source site that can reach one of these over the call
    /// graph (`taint-flow`), with the witness chain.
    pub taint_sinks: Vec<String>,
    /// Tape-purity entry points: fn specs that must never reach a tape
    /// allocation (the tape-free inference fast path).
    pub tape_pure_fns: Vec<String>,
    /// Tape-allocation targets for the purity rule: fn specs that allocate
    /// or grow an autograd tape.
    pub tape_alloc_fns: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            deterministic_prefixes: vec![
                "crates/gnn/src/".into(),
                "crates/graph/src/".into(),
                "crates/core/src/".into(),
                "crates/tensor/src/".into(),
                "crates/trace/src/".into(),
                "crates/nlp/src/".into(),
                "crates/serve/src/".into(),
                // the churn load generator: its trace and counters are a
                // determinism contract (BENCH_scale.json reproducibility)
                "crates/testbed/src/churn".into(),
            ],
            clock_exempt_prefixes: vec!["crates/bench/".into()],
            hot_entry_points: vec![
                // dense/sparse kernels — every variant (Matrix, Csr, par, Tape)
                "matmul".into(),
                "t_matmul".into(),
                "matmul_t".into(),
                "spmm".into(),
                "t_spmm".into(),
                // the autograd tape: every op builds hot closures
                "Tape::*".into(),
                // tape-free inference kernels: the serving fast path runs
                // entirely through the pooled InferCtx
                "InferCtx::*".into(),
                "BufferPool::*".into(),
                "forward_infer".into(),
                "with_ctx".into(),
                // serving entry points
                "GlintDetector::assess".into(),
                "GlintDetector::try_assess".into(),
                "GlintDetector::assess_batch".into(),
                "GlintDetector::process_window".into(),
                "GlintDetector::assess_under_pressure".into(),
                // live delta-ingest path: one delta → re-mine → verdict,
                // runs per rule change on a million-home stream
                "IncrementalPipeline::apply".into(),
                "IncrementalPipeline::ingest".into(),
                "GlintDetector::apply_delta".into(),
                // glint-serve request path: admission, dispatch, handlers
                "accept_loop".into(),
                "worker_loop".into(),
                "handle_connection".into(),
                "handle_score".into(),
                "handle_score_batch".into(),
                "handle_feedback".into(),
                "handle_metrics".into(),
                // trainer step functions (per-step math, not checkpoint IO)
                "step".into(),
                "reduce_batch".into(),
            ],
            inference_entry_points: vec![
                "GlintDetector::assess".into(),
                "GlintDetector::try_assess".into(),
                "GlintDetector::assess_batch".into(),
                "GlintDetector::assess_under_pressure".into(),
            ],
            no_index_fns: Vec::new(),
            degradation_files: vec![
                "crates/core/src/detector.rs".into(),
                // the serving layer's panic-isolation boundary: a worker
                // containing a handler panic and respawning is the design
                "crates/serve/src/worker.rs".into(),
            ],
            taint_sinks: vec![
                // verdict/score outputs
                "GlintDetector::assess".into(),
                "GlintDetector::try_assess".into(),
                "GlintDetector::assess_batch".into(),
                "GlintDetector::process_window".into(),
                // serving verdicts: the detector only ever sees the discrete
                // pressure rung, never the clock, so this must stay clean
                "GlintDetector::assess_under_pressure".into(),
                // incremental verdicts: a delta's verdict must be a pure
                // function of the delta stream, never of clock or hasher
                "IncrementalPipeline::ingest".into(),
                // per-home shard payloads and their manifest CRCs
                "ShardedStore::save_shard".into(),
                // GLINTDUR envelope writes
                "write_durable".into(),
                // checkpoint payloads
                "save_checkpoint".into(),
            ],
            tape_pure_fns: vec!["forward_infer".into()],
            tape_alloc_fns: vec!["Tape::*".into()],
        }
    }
}

impl Config {
    pub(crate) fn in_deterministic(&self, path: &str) -> bool {
        self.deterministic_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
    pub(crate) fn clock_exempt(&self, path: &str) -> bool {
        self.clock_exempt_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
    pub(crate) fn is_degradation(&self, path: &str) -> bool {
        self.degradation_files.iter().any(|p| p == path)
    }
}

/// A parsed `glint-lint: allow(…)` pragma.
#[derive(Clone, Debug)]
struct Pragma {
    line: u32,
    rules: Vec<String>,
    justified: bool,
    /// True when every named rule parses — only such pragmas participate
    /// in unused-allow accounting (malformed ones are already findings).
    well_formed: bool,
}

/// Parse suppression pragmas out of the comment stream. Returns the pragmas
/// plus findings for malformed ones.
fn parse_pragmas(file: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("glint-lint:") else {
            continue;
        };
        if !c.is_line {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: RuleId::Pragma,
                message: "suppression pragmas must be `//` line comments".into(),
                witness: Vec::new(),
            });
            continue;
        }
        let rest = rest.trim();
        let (rules_part, after) = match rest.strip_prefix("allow(").and_then(|r| r.split_once(')'))
        {
            Some(split) => split,
            None => {
                findings.push(Finding {
                    file: file.into(),
                    line: c.line,
                    rule: RuleId::Pragma,
                    message: "malformed pragma: expected `glint-lint: allow(<rule, …>) — <reason>`"
                        .into(),
                    witness: Vec::new(),
                });
                continue;
            }
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut well_formed = !rules.is_empty();
        for r in &rules {
            if RuleId::parse(r).is_none() {
                well_formed = false;
                findings.push(Finding {
                    file: file.into(),
                    line: c.line,
                    rule: RuleId::Pragma,
                    message: format!("pragma names unknown rule `{r}`"),
                    witness: Vec::new(),
                });
            }
        }
        // Justification: whatever follows the closing paren, minus separator
        // punctuation (`—`, `-`, `:`). Must contain a word.
        let reason = after.trim_start_matches([' ', '\t', '—', '-', ':']).trim();
        let justified = reason.chars().any(|ch| ch.is_alphanumeric());
        if !justified {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: RuleId::Pragma,
                message: "pragma is missing its justification: `allow(<rule>) — <reason>`".into(),
                witness: Vec::new(),
            });
        }
        if rules.is_empty() {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: RuleId::Pragma,
                message: "pragma allows no rules".into(),
                witness: Vec::new(),
            });
        }
        pragmas.push(Pragma {
            line: c.line,
            rules,
            justified,
            well_formed,
        });
    }
    (pragmas, findings)
}

/// Everything `check_file` needs to know about one file. Token ranges are
/// indices into `toks` (the FULL token stream — never a stripped copy, so
/// the syntax layer's body ranges line up).
pub struct FileInput<'a> {
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a [Comment],
    /// `#[cfg(test)]` item ranges (masked out of every rule scan).
    pub test_ranges: &'a [(usize, usize)],
    /// Body ranges of call-graph-hot fns in this file.
    pub hot_ranges: &'a [(usize, usize)],
    /// Body ranges of fns opted into `hot-index`.
    pub no_index_ranges: &'a [(usize, usize)],
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(s, e)| i >= s && i < e)
}

/// Per-file scan state between rule execution and suppression. Produced by
/// [`scan_file`]; interprocedural passes append their findings for this
/// file before [`finish_file`] applies pragmas, so a
/// `// glint-lint: allow(taint-flow) — …` works exactly like the per-site
/// rules (and participates in `unused-allow` accounting).
pub struct FileScan {
    path: String,
    pragmas: Vec<Pragma>,
    /// Meta findings (malformed pragmas) — never suppressible.
    meta: Vec<Finding>,
    /// Raw per-site findings, pre-suppression.
    raw: Vec<Finding>,
    /// Sorted lines of live (non-test) code tokens, for pragma coverage.
    code_lines: Vec<u32>,
}

/// Run every applicable rule over one file and apply suppressions.
/// Convenience wrapper over [`scan_file`] + [`finish_file`] with no
/// interprocedural findings.
pub fn check_file(input: &FileInput, cfg: &Config) -> Vec<Finding> {
    finish_file(scan_file(input, cfg), Vec::new())
}

/// Run the per-site rules over one file; suppression is deferred to
/// [`finish_file`].
pub fn scan_file(input: &FileInput, cfg: &Config) -> FileScan {
    let path = input.path;
    // Mask cfg(test) tokens in place of stripping them: dead tokens become
    // empty Punct placeholders that no pattern can match, while every index
    // keeps pointing at the same source position as the syntax layer's
    // body ranges.
    let dead: Vec<bool> = (0..input.toks.len())
        .map(|i| in_ranges(input.test_ranges, i))
        .collect();
    let masked: Vec<Tok> = input
        .toks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if dead[i] {
                Tok {
                    kind: TokKind::Punct,
                    text: String::new(),
                    line: t.line,
                }
            } else {
                t.clone()
            }
        })
        .collect();
    let toks = &masked[..];

    // Pragmas inside cfg(test) items are ignored entirely (test code is
    // out of scope, so they can neither suppress nor be stale).
    let test_lines: Vec<(u32, u32)> = input
        .test_ranges
        .iter()
        .filter(|&&(s, e)| e > s)
        .map(|&(s, e)| (input.toks[s].line, input.toks[e - 1].line))
        .collect();
    let (pragmas, mut findings) = parse_pragmas(path, input.comments);
    let pragmas: Vec<Pragma> = pragmas
        .into_iter()
        .filter(|p| {
            !test_lines
                .iter()
                .any(|&(lo, hi)| p.line >= lo && p.line <= hi)
        })
        .collect();
    findings.retain(|f| {
        !test_lines
            .iter()
            .any(|&(lo, hi)| f.line >= lo && f.line <= hi)
    });

    let mut raw: Vec<Finding> = Vec::new();
    if cfg.in_deterministic(path) {
        rule_hash_collection(path, toks, &mut raw);
    }
    if !cfg.clock_exempt(path) {
        rule_wall_clock(path, toks, &mut raw);
        rule_entropy_rng(path, toks, &mut raw);
    }
    rule_partial_cmp_unwrap(path, toks, &mut raw);
    rule_float_cmp_order(path, toks, &mut raw);
    rule_float_eq(path, toks, &mut raw);
    let hot = |i: usize| in_ranges(input.hot_ranges, i);
    rule_hot_unwrap(path, toks, &hot, &mut raw);
    rule_hot_panic(path, toks, &hot, &mut raw);
    rule_hot_atomic(path, toks, &hot, &mut raw);
    rule_hot_lock(path, toks, &hot, &mut raw);
    let no_index = |i: usize| in_ranges(input.no_index_ranges, i);
    rule_hot_index(path, toks, &no_index, &mut raw);
    if !cfg.is_degradation(path) {
        rule_catch_unwind(path, toks, &mut raw);
    }

    let mut code_lines: Vec<u32> = input
        .toks
        .iter()
        .enumerate()
        .filter(|(i, _)| !dead[*i])
        .map(|(_, t)| t.line)
        .collect();
    code_lines.sort_unstable();
    code_lines.dedup();

    FileScan {
        path: path.to_string(),
        pragmas,
        meta: findings,
        raw,
        code_lines,
    }
}

/// Merge interprocedural findings for this file into the scan, apply
/// suppressions, and return the surviving findings.
///
/// A justified pragma covers findings on its own line (trailing comment) or
/// on the next line holding any code token — so a justification wrapped
/// over several comment lines still reaches the statement below it. Each
/// (pragma, rule) pair that suppressed nothing is itself a finding: stale
/// allows must be deleted, not accumulated.
pub fn finish_file(scan: FileScan, extra: Vec<Finding>) -> Vec<Finding> {
    let FileScan {
        path,
        pragmas,
        meta: mut findings,
        mut raw,
        code_lines,
    } = scan;
    raw.extend(extra);

    let next_code_line = |l: u32| code_lines.iter().copied().find(|&cl| cl > l);
    let covers = |p: &Pragma, rule: &str, f: &Finding| {
        p.justified
            && p.rules.iter().any(|r| r == rule)
            && rule == f.rule.as_str()
            && (p.line == f.line || next_code_line(p.line) == Some(f.line))
    };
    let suppressed: Vec<bool> = raw
        .iter()
        .map(|f| {
            pragmas
                .iter()
                .any(|p| p.rules.iter().any(|r| covers(p, r, f)))
        })
        .collect();
    for p in &pragmas {
        if !(p.well_formed && p.justified) {
            continue; // already reported as a pragma finding
        }
        for r in &p.rules {
            let used = raw.iter().any(|f| covers(p, r, f));
            if !used {
                findings.push(Finding {
                    file: path.clone(),
                    line: p.line,
                    rule: RuleId::UnusedAllow,
                    message: format!(
                        "pragma allows `{r}` but suppresses nothing here — delete the stale allow"
                    ),
                    witness: Vec::new(),
                });
            }
        }
    }
    let mut kept: Vec<Finding> = raw
        .into_iter()
        .zip(suppressed)
        .filter(|(_, s)| !*s)
        .map(|(f, _)| f)
        .collect();
    findings.append(&mut kept);
    findings.sort();
    findings
}

fn push(out: &mut Vec<Finding>, file: &str, line: u32, rule: RuleId, message: impl Into<String>) {
    out.push(Finding {
        file: file.into(),
        line,
        rule,
        message: message.into(),
        witness: Vec::new(),
    });
}

fn is_ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

/// `hash-collection`: `HashMap`/`HashSet` anywhere in deterministic-crate
/// library code. Iteration order of std hash collections varies run-to-run
/// (RandomState), and a token-level pass cannot prove a map is never
/// iterated — so the types are banned outright; membership-only sites carry
/// a justified pragma.
fn rule_hash_collection(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                out,
                file,
                t.line,
                RuleId::HashCollection,
                format!(
                    "`{}` in deterministic crate code: iteration order is random per process; \
                     use BTreeMap/BTreeSet or a sorted-key loop",
                    t.text
                ),
            );
        }
    }
}

/// `wall-clock`: `Instant::now()` / `SystemTime::now()` outside bench code.
fn rule_wall_clock(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(3) {
        if (is_ident(&w[0], "Instant") || is_ident(&w[0], "SystemTime"))
            && w[1].text == "::"
            && is_ident(&w[2], "now")
        {
            push(
                out,
                file,
                w[0].line,
                RuleId::WallClock,
                format!(
                    "`{}::now()` outside bench code: wall-clock reads make runs \
                     non-reproducible; thread timing through explicit parameters",
                    w[0].text
                ),
            );
        }
    }
}

/// `entropy-rng`: OS/time-seeded randomness outside bench code. Seeds must
/// be explicit (`seed_from_u64`) so every run is replayable.
fn rule_entropy_rng(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "thread_rng" || t.text == "from_entropy" {
            push(
                out,
                file,
                t.line,
                RuleId::EntropyRng,
                format!(
                    "`{}` seeds from the OS: results differ every run; \
                     use `SeedableRng::seed_from_u64` with an explicit seed",
                    t.text
                ),
            );
        }
        if t.text == "random"
            && i >= 2
            && toks[i - 1].text == "::"
            && is_ident(&toks[i - 2], "rand")
        {
            push(
                out,
                file,
                t.line,
                RuleId::EntropyRng,
                "`rand::random` seeds from the OS; use an explicitly seeded RNG",
            );
        }
    }
}

/// Index just past the balanced `(...)` group starting at `open_idx`
/// (which must point at `(`). If `toks[open_idx]` is not `(`, returns
/// `open_idx` unchanged.
fn skip_paren_group(toks: &[Tok], open_idx: usize) -> usize {
    if toks.get(open_idx).map(|t| t.text.as_str()) != Some("(") {
        return open_idx;
    }
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// `partial-cmp-unwrap`: `partial_cmp(…).unwrap()` / `.expect(…)` — panics
/// the moment a NaN reaches the comparison. `f32::total_cmp`/`f64::total_cmp`
/// is the drop-in fix.
fn rule_partial_cmp_unwrap(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "partial_cmp") {
            continue;
        }
        let after = skip_paren_group(toks, i + 1);
        if toks.get(after).map(|t| t.text.as_str()) == Some(".")
            && toks
                .get(after + 1)
                .is_some_and(|t| is_ident(t, "unwrap") || is_ident(t, "expect"))
        {
            push(
                out,
                file,
                t.line,
                RuleId::PartialCmpUnwrap,
                "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` \
                 or handle non-finite values explicitly",
            );
        }
    }
}

/// Ordering adaptors whose comparator decides sort/extremum results.
pub(crate) const ORDER_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "select_nth_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// `float-cmp-order`: an ordering adaptor whose comparator uses
/// `partial_cmp` — even with a NaN fallback (`unwrap_or(Equal)`), NaNs make
/// the comparator non-total and the resulting order input-position
/// dependent. `total_cmp` gives one deterministic order.
fn rule_float_cmp_order(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && ORDER_FNS.contains(&t.text.as_str())) {
            continue;
        }
        let open = i + 1;
        if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let end = skip_paren_group(toks, open);
        if toks[open..end].iter().any(|t| is_ident(t, "partial_cmp")) {
            push(
                out,
                file,
                t.line,
                RuleId::FloatCmpOrder,
                format!(
                    "`{}` with a `partial_cmp` comparator is not a total order under \
                     NaN; use `total_cmp` (or filter non-finite values first)",
                    t.text
                ),
            );
        }
    }
}

/// `float-eq`: `==`/`!=` with a float literal on either side. Exact float
/// equality is almost always a rounding bug; where it is deliberate (IEEE
/// zero tests in kernels) the site carries a pragma saying why.
fn rule_float_eq(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let rhs_float = toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Float);
        if lhs_float || rhs_float {
            push(
                out,
                file,
                t.line,
                RuleId::FloatEq,
                format!(
                    "`{}` against a float literal: exact float equality is \
                     rounding-fragile; compare against a tolerance (or pragma \
                     a deliberate IEEE zero test)",
                    t.text
                ),
            );
        }
    }
}

/// `hot-unwrap`: `.unwrap()` / `.expect(…)` in call-graph-hot code.
fn rule_hot_unwrap(file: &str, toks: &[Tok], hot: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && hot(i)
        {
            push(
                out,
                file,
                t.line,
                RuleId::HotUnwrap,
                format!(
                    "`.{}()` on the hot path (reachable from a kernel/serving entry \
                     point): return an error or restructure so the failure case \
                     cannot exist",
                    t.text
                ),
            );
        }
    }
}

/// `hot-panic`: panicking macros in call-graph-hot code
/// (`assert!`/`debug_assert!` stay allowed — they state contracts).
fn rule_hot_panic(file: &str, toks: &[Tok], hot: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (i, w) in toks.windows(2).enumerate() {
        if w[0].kind == TokKind::Ident
            && PANIC_MACROS.contains(&w[0].text.as_str())
            && w[1].text == "!"
            && hot(i)
        {
            push(
                out,
                file,
                w[0].line,
                RuleId::HotPanic,
                format!("`{}!` on the hot path", w[0].text),
            );
        }
    }
}

/// Atomic orderings stronger than `Relaxed`.
const STRONG_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

/// `hot-atomic-ordering`: a non-`Relaxed` atomic ordering inside hot code.
/// The `GLINT_THREADS` contract promises bitwise-identical results at any
/// thread count, which the kernels achieve by *not* synchronizing through
/// shared memory on the hot path — fences there are either unnecessary
/// (justify with a pragma) or a sign the kernel grew cross-thread traffic.
fn rule_hot_atomic(file: &str, toks: &[Tok], hot: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && STRONG_ORDERINGS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "::"
            && is_ident(&toks[i - 2], "Ordering")
            && hot(i)
        {
            push(
                out,
                file,
                t.line,
                RuleId::HotAtomicOrdering,
                format!(
                    "`Ordering::{}` on the hot path: the bitwise-determinism contract \
                     forbids cross-thread synchronization in kernels; use `Relaxed` \
                     for gates/counters or justify the fence with a pragma",
                    t.text
                ),
            );
        }
    }
}

/// `hot-lock`: lock acquisition inside hot code. A contended mutex on the
/// serving path destroys the latency budget and, worse, can order work
/// nondeterministically; hot-path locks require a justification pragma.
fn rule_hot_lock(file: &str, toks: &[Tok], hot: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "lock" || t.text == "try_lock")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && hot(i)
        {
            push(
                out,
                file,
                t.line,
                RuleId::HotLock,
                format!(
                    "`.{}()` on the hot path: lock acquisition inside a kernel/serving \
                     region needs a justification pragma (latency + ordering hazards \
                     under the GLINT_THREADS determinism contract)",
                    t.text
                ),
            );
        }
    }
}

/// `catch-unwind`: `catch_unwind` outside the designated degradation layer.
/// Containing a panic is legitimate exactly where one poisoned input must
/// not kill its siblings (the serving path's quarantine); anywhere else it
/// swallows bugs that typed errors should surface.
fn rule_catch_unwind(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if is_ident(t, "catch_unwind") {
            push(
                out,
                file,
                t.line,
                RuleId::CatchUnwind,
                "`catch_unwind` outside the degradation layer: return typed errors \
                 instead of containing panics (fault isolation belongs in the files \
                 listed in `Config::degradation_files`)",
            );
        }
    }
}

/// `hot-index`: `expr[…]` indexing in opt-in panic-free fns (prefer
/// iterators, `get`, or `split_at_mut`). Array literals (`= [...]`), macro
/// brackets (`vec![...]`) and attributes (`#[...]`) do not fire.
fn rule_hot_index(
    file: &str,
    toks: &[Tok],
    no_index: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 1..toks.len() {
        if toks[i].text != "[" || !no_index(i) {
            continue;
        }
        const KEYWORDS: &[&str] = &[
            "return", "break", "else", "in", "match", "if", "while", "loop", "move", "mut", "ref",
            "as",
        ];
        let prev = &toks[i - 1];
        let indexable = (prev.kind == TokKind::Ident && !KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if indexable {
            push(
                out,
                file,
                toks[i].line,
                RuleId::HotIndex,
                "slice indexing in a panic-free fn: use iterators, `get`, \
                 or `split_at_mut`",
            );
        }
    }
}
