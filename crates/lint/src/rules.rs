//! Token-pattern rules enforcing the workspace invariants, plus the
//! suppression-pragma machinery.
//!
//! Three invariant families (see DESIGN.md "Static invariants"):
//!
//! * **determinism** — `hash-collection`, `wall-clock`, `entropy-rng`
//! * **NaN-safety** — `partial-cmp-unwrap`, `float-cmp-order`, `float-eq`
//! * **panic-safety** — `hot-unwrap`, `hot-panic`, `hot-index`
//!
//! A finding on line `L` is suppressed by a justified pragma on line `L` or
//! `L-1`:
//!
//! ```text
//! // glint-lint: allow(rule-id, other-rule) — why this site is sound
//! ```
//!
//! The justification after the dash is mandatory; a pragma without one (or
//! naming an unknown rule) is itself reported under the `pragma` rule.

use crate::lexer::{Comment, Tok, TokKind};

/// Stable rule identifiers (kebab-case, used in reports and pragmas).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    HashCollection,
    WallClock,
    EntropyRng,
    PartialCmpUnwrap,
    FloatCmpOrder,
    FloatEq,
    HotUnwrap,
    HotPanic,
    HotIndex,
    CatchUnwind,
    Pragma,
}

impl RuleId {
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::HashCollection => "hash-collection",
            RuleId::WallClock => "wall-clock",
            RuleId::EntropyRng => "entropy-rng",
            RuleId::PartialCmpUnwrap => "partial-cmp-unwrap",
            RuleId::FloatCmpOrder => "float-cmp-order",
            RuleId::FloatEq => "float-eq",
            RuleId::HotUnwrap => "hot-unwrap",
            RuleId::HotPanic => "hot-panic",
            RuleId::HotIndex => "hot-index",
            RuleId::CatchUnwind => "catch-unwind",
            RuleId::Pragma => "pragma",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }

    /// Invariant family, for reports.
    pub fn family(self) -> &'static str {
        match self {
            RuleId::HashCollection | RuleId::WallClock | RuleId::EntropyRng => "determinism",
            RuleId::PartialCmpUnwrap | RuleId::FloatCmpOrder | RuleId::FloatEq => "nan-safety",
            RuleId::HotUnwrap | RuleId::HotPanic | RuleId::HotIndex | RuleId::CatchUnwind => {
                "panic-safety"
            }
            RuleId::Pragma => "meta",
        }
    }
}

/// Every rule, in report order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::HashCollection,
    RuleId::WallClock,
    RuleId::EntropyRng,
    RuleId::PartialCmpUnwrap,
    RuleId::FloatCmpOrder,
    RuleId::FloatEq,
    RuleId::HotUnwrap,
    RuleId::HotPanic,
    RuleId::HotIndex,
    RuleId::CatchUnwind,
    RuleId::Pragma,
];

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

/// Which parts of the workspace each rule family applies to. Paths are
/// workspace-relative with `/` separators.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path prefixes where `hash-collection` applies: crates whose library
    /// code must be insertion-order independent.
    pub deterministic_prefixes: Vec<String>,
    /// Path prefixes exempt from `wall-clock` / `entropy-rng` (benchmarks
    /// time things by design).
    pub clock_exempt_prefixes: Vec<String>,
    /// Exact files where `hot-unwrap` / `hot-panic` apply (designated
    /// hot-path kernels that must not panic per element).
    pub hot_path_files: Vec<String>,
    /// Exact files where `hot-index` applies (opt-in: kernels audited to use
    /// iterators/`split_at_mut` instead of per-element indexing).
    pub no_index_files: Vec<String>,
    /// Exact files allowed to use `catch_unwind`: the designated graceful-
    /// degradation layer, where containing a panic to quarantine one graph
    /// is the point. Everywhere else, swallowing panics hides bugs.
    pub degradation_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            deterministic_prefixes: vec![
                "crates/gnn/src/".into(),
                "crates/graph/src/".into(),
                "crates/core/src/".into(),
                "crates/tensor/src/".into(),
                "crates/trace/src/".into(),
            ],
            clock_exempt_prefixes: vec!["crates/bench/".into()],
            hot_path_files: vec![
                "crates/tensor/src/par.rs".into(),
                "crates/tensor/src/matrix.rs".into(),
                "crates/tensor/src/csr.rs".into(),
            ],
            no_index_files: Vec::new(),
            degradation_files: vec!["crates/core/src/detector.rs".into()],
        }
    }
}

impl Config {
    fn in_deterministic(&self, path: &str) -> bool {
        self.deterministic_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
    fn clock_exempt(&self, path: &str) -> bool {
        self.clock_exempt_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
    fn is_hot_path(&self, path: &str) -> bool {
        self.hot_path_files.iter().any(|p| p == path)
    }
    fn is_no_index(&self, path: &str) -> bool {
        self.no_index_files.iter().any(|p| p == path)
    }
    fn is_degradation(&self, path: &str) -> bool {
        self.degradation_files.iter().any(|p| p == path)
    }
}

/// A parsed `glint-lint: allow(…)` pragma.
#[derive(Clone, Debug)]
struct Pragma {
    line: u32,
    rules: Vec<String>,
    justified: bool,
}

/// Parse suppression pragmas out of the comment stream. Returns the pragmas
/// plus findings for malformed ones.
fn parse_pragmas(file: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("glint-lint:") else {
            continue;
        };
        if !c.is_line {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: RuleId::Pragma,
                message: "suppression pragmas must be `//` line comments".into(),
            });
            continue;
        }
        let rest = rest.trim();
        let (rules_part, after) = match rest.strip_prefix("allow(").and_then(|r| r.split_once(')'))
        {
            Some(split) => split,
            None => {
                findings.push(Finding {
                    file: file.into(),
                    line: c.line,
                    rule: RuleId::Pragma,
                    message: "malformed pragma: expected `glint-lint: allow(<rule, …>) — <reason>`"
                        .into(),
                });
                continue;
            }
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        for r in &rules {
            if RuleId::parse(r).is_none() {
                findings.push(Finding {
                    file: file.into(),
                    line: c.line,
                    rule: RuleId::Pragma,
                    message: format!("pragma names unknown rule `{r}`"),
                });
            }
        }
        // Justification: whatever follows the closing paren, minus separator
        // punctuation (`—`, `-`, `:`). Must contain a word.
        let reason = after.trim_start_matches([' ', '\t', '—', '-', ':']).trim();
        let justified = reason.chars().any(|ch| ch.is_alphanumeric());
        if !justified {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: RuleId::Pragma,
                message: "pragma is missing its justification: `allow(<rule>) — <reason>`".into(),
            });
        }
        if rules.is_empty() {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: RuleId::Pragma,
                message: "pragma allows no rules".into(),
            });
        }
        pragmas.push(Pragma {
            line: c.line,
            rules,
            justified,
        });
    }
    (pragmas, findings)
}

/// Run every applicable rule over one file's (cfg(test)-stripped) tokens and
/// comments. `path` is workspace-relative with `/` separators.
pub fn check_file(path: &str, toks: &[Tok], comments: &[Comment], cfg: &Config) -> Vec<Finding> {
    let (pragmas, mut findings) = parse_pragmas(path, comments);
    let mut raw: Vec<Finding> = Vec::new();

    if cfg.in_deterministic(path) {
        rule_hash_collection(path, toks, &mut raw);
    }
    if !cfg.clock_exempt(path) {
        rule_wall_clock(path, toks, &mut raw);
        rule_entropy_rng(path, toks, &mut raw);
    }
    rule_partial_cmp_unwrap(path, toks, &mut raw);
    rule_float_cmp_order(path, toks, &mut raw);
    rule_float_eq(path, toks, &mut raw);
    if cfg.is_hot_path(path) {
        rule_hot_unwrap(path, toks, &mut raw);
        rule_hot_panic(path, toks, &mut raw);
    }
    if cfg.is_no_index(path) {
        rule_hot_index(path, toks, &mut raw);
    }
    if !cfg.is_degradation(path) {
        rule_catch_unwind(path, toks, &mut raw);
    }

    // Apply suppressions: a justified pragma covers findings on its own line
    // (trailing comment) or on the next line holding any code token — so a
    // justification wrapped over several comment lines still reaches the
    // statement below it.
    let next_code_line = |l: u32| toks.iter().map(|t| t.line).filter(|&tl| tl > l).min();
    let suppressed = |f: &Finding| {
        pragmas.iter().any(|p| {
            p.justified
                && p.rules.iter().any(|r| r == f.rule.as_str())
                && (p.line == f.line || next_code_line(p.line) == Some(f.line))
        })
    };
    raw.retain(|f| !suppressed(f));
    findings.append(&mut raw);
    findings.sort();
    findings
}

fn push(out: &mut Vec<Finding>, file: &str, line: u32, rule: RuleId, message: impl Into<String>) {
    out.push(Finding {
        file: file.into(),
        line,
        rule,
        message: message.into(),
    });
}

fn is_ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

/// `hash-collection`: `HashMap`/`HashSet` anywhere in deterministic-crate
/// library code. Iteration order of std hash collections varies run-to-run
/// (RandomState), and a token-level pass cannot prove a map is never
/// iterated — so the types are banned outright; membership-only sites carry
/// a justified pragma.
fn rule_hash_collection(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                out,
                file,
                t.line,
                RuleId::HashCollection,
                format!(
                    "`{}` in deterministic crate code: iteration order is random per process; \
                     use BTreeMap/BTreeSet or a sorted-key loop",
                    t.text
                ),
            );
        }
    }
}

/// `wall-clock`: `Instant::now()` / `SystemTime::now()` outside bench code.
fn rule_wall_clock(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(3) {
        if (is_ident(&w[0], "Instant") || is_ident(&w[0], "SystemTime"))
            && w[1].text == "::"
            && is_ident(&w[2], "now")
        {
            push(
                out,
                file,
                w[0].line,
                RuleId::WallClock,
                format!(
                    "`{}::now()` outside bench code: wall-clock reads make runs \
                     non-reproducible; thread timing through explicit parameters",
                    w[0].text
                ),
            );
        }
    }
}

/// `entropy-rng`: OS/time-seeded randomness outside bench code. Seeds must
/// be explicit (`seed_from_u64`) so every run is replayable.
fn rule_entropy_rng(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "thread_rng" || t.text == "from_entropy" {
            push(
                out,
                file,
                t.line,
                RuleId::EntropyRng,
                format!(
                    "`{}` seeds from the OS: results differ every run; \
                     use `SeedableRng::seed_from_u64` with an explicit seed",
                    t.text
                ),
            );
        }
        if t.text == "random"
            && i >= 2
            && toks[i - 1].text == "::"
            && is_ident(&toks[i - 2], "rand")
        {
            push(
                out,
                file,
                t.line,
                RuleId::EntropyRng,
                "`rand::random` seeds from the OS; use an explicitly seeded RNG",
            );
        }
    }
}

/// Index just past the balanced `(...)` group starting at `open_idx`
/// (which must point at `(`). If `toks[open_idx]` is not `(`, returns
/// `open_idx` unchanged.
fn skip_paren_group(toks: &[Tok], open_idx: usize) -> usize {
    if toks.get(open_idx).map(|t| t.text.as_str()) != Some("(") {
        return open_idx;
    }
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// `partial-cmp-unwrap`: `partial_cmp(…).unwrap()` / `.expect(…)` — panics
/// the moment a NaN reaches the comparison. `f32::total_cmp`/`f64::total_cmp`
/// is the drop-in fix.
fn rule_partial_cmp_unwrap(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "partial_cmp") {
            continue;
        }
        let after = skip_paren_group(toks, i + 1);
        if toks.get(after).map(|t| t.text.as_str()) == Some(".")
            && toks
                .get(after + 1)
                .is_some_and(|t| is_ident(t, "unwrap") || is_ident(t, "expect"))
        {
            push(
                out,
                file,
                t.line,
                RuleId::PartialCmpUnwrap,
                "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` \
                 or handle non-finite values explicitly",
            );
        }
    }
}

/// Ordering adaptors whose comparator decides sort/extremum results.
const ORDER_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "select_nth_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// `float-cmp-order`: an ordering adaptor whose comparator uses
/// `partial_cmp` — even with a NaN fallback (`unwrap_or(Equal)`), NaNs make
/// the comparator non-total and the resulting order input-position
/// dependent. `total_cmp` gives one deterministic order.
fn rule_float_cmp_order(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && ORDER_FNS.contains(&t.text.as_str())) {
            continue;
        }
        let open = i + 1;
        if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let end = skip_paren_group(toks, open);
        if toks[open..end].iter().any(|t| is_ident(t, "partial_cmp")) {
            push(
                out,
                file,
                t.line,
                RuleId::FloatCmpOrder,
                format!(
                    "`{}` with a `partial_cmp` comparator is not a total order under \
                     NaN; use `total_cmp` (or filter non-finite values first)",
                    t.text
                ),
            );
        }
    }
}

/// `float-eq`: `==`/`!=` with a float literal on either side. Exact float
/// equality is almost always a rounding bug; where it is deliberate (IEEE
/// zero tests in kernels) the site carries a pragma saying why.
fn rule_float_eq(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let rhs_float = toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Float);
        if lhs_float || rhs_float {
            push(
                out,
                file,
                t.line,
                RuleId::FloatEq,
                format!(
                    "`{}` against a float literal: exact float equality is \
                     rounding-fragile; compare against a tolerance (or pragma \
                     a deliberate IEEE zero test)",
                    t.text
                ),
            );
        }
    }
}

/// `hot-unwrap`: `.unwrap()` / `.expect(…)` in designated hot-path kernels.
fn rule_hot_unwrap(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
        {
            push(
                out,
                file,
                t.line,
                RuleId::HotUnwrap,
                format!(
                    "`.{}()` in a hot-path kernel: return an error or restructure \
                     so the failure case cannot exist",
                    t.text
                ),
            );
        }
    }
}

/// `hot-panic`: panicking macros in designated hot-path kernels
/// (`assert!`/`debug_assert!` stay allowed — they state contracts).
fn rule_hot_panic(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for w in toks.windows(2) {
        if w[0].kind == TokKind::Ident
            && PANIC_MACROS.contains(&w[0].text.as_str())
            && w[1].text == "!"
        {
            push(
                out,
                file,
                w[0].line,
                RuleId::HotPanic,
                format!("`{}!` in a hot-path kernel", w[0].text),
            );
        }
    }
}

/// `catch-unwind`: `catch_unwind` outside the designated degradation layer.
/// Containing a panic is legitimate exactly where one poisoned input must
/// not kill its siblings (the serving path's quarantine); anywhere else it
/// swallows bugs that typed errors should surface.
fn rule_catch_unwind(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if is_ident(t, "catch_unwind") {
            push(
                out,
                file,
                t.line,
                RuleId::CatchUnwind,
                "`catch_unwind` outside the degradation layer: return typed errors \
                 instead of containing panics (fault isolation belongs in the files \
                 listed in `Config::degradation_files`)",
            );
        }
    }
}

/// `hot-index`: `expr[…]` indexing in opt-in panic-free modules (prefer
/// iterators, `get`, or `split_at_mut`). Array literals (`= [...]`), macro
/// brackets (`vec![...]`) and attributes (`#[...]`) do not fire.
fn rule_hot_index(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 1..toks.len() {
        if toks[i].text != "[" {
            continue;
        }
        const KEYWORDS: &[&str] = &[
            "return", "break", "else", "in", "match", "if", "while", "loop", "move", "mut", "ref",
            "as",
        ];
        let prev = &toks[i - 1];
        let indexable = (prev.kind == TokKind::Ident && !KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if indexable {
            push(
                out,
                file,
                toks[i].line,
                RuleId::HotIndex,
                "slice indexing in a panic-free module: use iterators, `get`, \
                 or `split_at_mut`",
            );
        }
    }
}
