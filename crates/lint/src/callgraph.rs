//! Workspace-wide approximate call graph over the syntax layer's symbol
//! tables, plus hot-set propagation from declared entry points.
//!
//! Resolution is name-based with method-receiver heuristics — NOT type
//! checked. The soundness posture (documented in DESIGN.md):
//!
//! * **over-approximation**: a method call `x.embed(…)` links to *every*
//!   workspace fn named `embed` that has a receiver — this is exactly what
//!   makes trait dispatch (`dyn GraphModel`) visible without types, at the
//!   cost of possible false edges. False edges can only make *more* code
//!   hot, never hide hot code, so the panic-safety rules stay conservative;
//! * **under-approximation**: calls through function pointers/closures
//!   passed as values, macro-generated calls, and calls into `std` are not
//!   edges. Qualified calls whose qualifier names nothing in the workspace
//!   (`Vec::new`, `f32::max`) and method calls on SCREAMING_CASE statics
//!   (`STATE.load(…)` — std atomics/lazies) are treated as std too, rather
//!   than linked to every same-named workspace fn. Calls that match no
//!   workspace symbol are *reported* in [`CallGraph::unresolved`] rather
//!   than silently dropped.
//!
//! `#[cfg(test)]` functions are excluded from the graph entirely: they
//! neither seed hotness nor extend chains (test callers must not make
//! library code hot).

use crate::syntax::{CallKind, CallSite, FileSyntax};
use std::collections::{BTreeMap, BTreeSet};

/// One function node in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Workspace-relative file path (`crates/tensor/src/par.rs`).
    pub file: String,
    /// Crate name derived from the path (`glint-tensor` → `glint_tensor`;
    /// the root package is `glint_suite`).
    pub krate: String,
    pub name: String,
    pub receiver: Option<String>,
    /// Parameter name → type last segment, receiver evidence for resolution.
    pub params: Vec<(String, String)>,
    /// `for`-loop element bindings: binding → `"self.<field>"` or a bare
    /// local name (chased through [`local_type`]).
    pub loop_elems: Vec<(String, String)>,
    pub module: Vec<String>,
    pub line: u32,
    /// Body token range into that file's token vector.
    pub body: Option<(usize, usize)>,
    pub cfg_feature: Option<String>,
    pub calls: Vec<CallSite>,
}

impl FnNode {
    /// `crate::module::Receiver::name`, the display identity used in
    /// reports and call chains.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = vec![self.krate.as_str()];
        for m in &self.module {
            parts.push(m);
        }
        if let Some(r) = &self.receiver {
            parts.push(r);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Adjacency: `edges[i]` = indices of fns that `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
    /// Calls that matched no workspace symbol: callee name → count.
    /// (Mostly std/shim calls; reported, never dropped.)
    pub unresolved: BTreeMap<String, usize>,
    /// Total resolved call edges (before dedup), for the report.
    pub resolved_calls: usize,
    /// Per-call resolution: `call_targets[i][k]` = fn indices call `k` of
    /// `fns[i].calls` resolved to (empty for unresolved calls). The
    /// lock-order analysis needs *which call site* reaches a lock, not just
    /// the deduplicated adjacency.
    pub call_targets: Vec<Vec<Vec<usize>>>,
    /// Struct name → field name → field type last segment, from `struct`
    /// items across the workspace. Receiver evidence for `self.field.f(…)`.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    /// Names declared by `trait` items. Typed narrowing is disabled for
    /// these: a `&dyn Trait` param must keep linking to every implementor.
    pub traits: BTreeSet<String>,
}

/// Module segments a file contributes by its location: Rust's file-tree
/// module structure. `crates/tensor/src/par.rs` → `["par"]`,
/// `crates/gnn/src/models/gin.rs` → `["models", "gin"]`; `lib.rs`,
/// `main.rs`, and `mod.rs` contribute their directories only. Without
/// this, `par::ordered_map(…)` cannot resolve — inline `mod` blocks are
/// not the only way code gets a module path.
pub fn file_modules(path: &str) -> Vec<String> {
    let rest = path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, r)| r)
        .unwrap_or(path);
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let mut mods: Vec<String> = rest.split('/').map(|s| s.to_string()).collect();
    if let Some(last) = mods.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
        if last == "lib" || last == "main" || last == "mod" {
            mods.pop();
        }
    }
    mods
}

/// Derive the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or(rest);
        format!("glint_{}", krate.replace('-', "_"))
    } else if path.starts_with("src/") {
        "glint_suite".to_string()
    } else {
        // Fixture/masquerade paths: first component.
        path.split('/').next().unwrap_or(path).replace('-', "_")
    }
}

impl CallGraph {
    /// Build the graph from parsed files. `#[cfg(test)]` fns are dropped
    /// here — they are not nodes at all.
    pub fn build(files: &[FileSyntax]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut structs: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
        let mut traits: BTreeSet<String> = BTreeSet::new();
        for fs in files {
            let krate = crate_of(&fs.path);
            let file_mods = file_modules(&fs.path);
            for (name, fields) in &fs.structs {
                structs
                    .entry(name.clone())
                    .or_default()
                    .extend(fields.iter().cloned());
            }
            traits.extend(fs.traits.iter().cloned());
            for f in &fs.fns {
                if f.is_test {
                    continue;
                }
                let mut module = file_mods.clone();
                module.extend(f.module.iter().cloned());
                fns.push(FnNode {
                    file: fs.path.clone(),
                    krate: krate.clone(),
                    name: f.name.clone(),
                    receiver: f.receiver.clone(),
                    params: f.params.clone(),
                    loop_elems: f.loop_elems.clone(),
                    module,
                    line: f.line,
                    body: f.body,
                    cfg_feature: f.cfg_feature.clone(),
                    calls: f.calls.clone(),
                });
            }
        }
        // Deterministic node order regardless of input file order.
        fns.sort_by(|a, b| {
            (&a.file, a.line, &a.name, &a.receiver).cmp(&(&b.file, b.line, &b.name, &b.receiver))
        });

        // Indices for resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut unresolved: BTreeMap<String, usize> = BTreeMap::new();
        let mut resolved_calls = 0usize;
        let tables = TypeTables {
            structs: &structs,
            traits: &traits,
        };
        let mut call_targets: Vec<Vec<Vec<usize>>> = Vec::with_capacity(fns.len());
        for i in 0..fns.len() {
            let caller = fns[i].clone();
            let mut out: BTreeSet<usize> = BTreeSet::new();
            let mut per_call: Vec<Vec<usize>> = Vec::with_capacity(caller.calls.len());
            for call in &caller.calls {
                match resolve(&fns, &by_name, &tables, &caller, call) {
                    Some(targets) => {
                        resolved_calls += 1;
                        out.extend(targets.iter().copied());
                        per_call.push(targets);
                    }
                    None => {
                        *unresolved.entry(call.name.clone()).or_insert(0) += 1;
                        per_call.push(Vec::new());
                    }
                }
            }
            edges[i] = out.into_iter().collect();
            call_targets.push(per_call);
        }
        CallGraph {
            fns,
            edges,
            unresolved,
            resolved_calls,
            call_targets,
            structs,
            traits,
        }
    }

    /// [`CallGraph::parents_from`] seeded by explicit fn indices.
    pub fn parents_from_set(&self, seeds: &BTreeSet<usize>) -> BTreeMap<usize, usize> {
        let mut parents: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = Vec::new();
        for &i in seeds {
            parents.entry(i).or_insert(i);
            frontier.push(i);
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &i in &frontier {
                for &j in &self.edges[i] {
                    if let std::collections::btree_map::Entry::Vacant(e) = parents.entry(j) {
                        e.insert(i);
                        next.push(j);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        parents
    }

    /// Reverse adjacency: `callers[i]` = indices of fns that may call
    /// `fns[i]`. The dataflow engine's backward (callee-summary) passes
    /// propagate along these.
    pub fn callers(&self) -> Vec<Vec<usize>> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (i, out) in self.edges.iter().enumerate() {
            for &j in out {
                rev[j].push(i);
            }
        }
        rev
    }

    /// The unresolved map minus mechanical noise: enum-variant / type
    /// constructors (capitalized names — `Some`, `Ok`, `Err`, local variant
    /// names) and std staples that positive evidence already classified as
    /// non-workspace calls. What remains is an actionable worklist of
    /// genuinely unknown callees.
    pub fn actionable_unresolved(&self) -> BTreeMap<String, usize> {
        self.unresolved
            .iter()
            .filter(|(name, _)| {
                name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && !STD_METHOD_STAPLES.contains(&name.as_str())
                    && !STD_FREE_STAPLES.contains(&name.as_str())
            })
            .map(|(name, count)| (name.clone(), *count))
            .collect()
    }

    /// Indices of fns matching an entry-point spec:
    /// * `name` — every fn with that name, method or free;
    /// * `Recv::name` — fns named `name` whose receiver is `Recv`;
    /// * `Recv::*` — every method of `Recv`.
    pub fn match_spec(&self, spec: &str) -> Vec<usize> {
        match spec.split_once("::") {
            Some((recv, name)) => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.receiver.as_deref() == Some(recv) && (name == "*" || f.name == name)
                })
                .map(|(i, _)| i)
                .collect(),
            None => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name == spec)
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Forward reachability from the given entry-point specs: the hot set.
    pub fn reachable(&self, specs: &[String]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = Vec::new();
        for spec in specs {
            for i in self.match_spec(spec) {
                if seen.insert(i) {
                    queue.push(i);
                }
            }
        }
        while let Some(i) = queue.pop() {
            for &j in &self.edges[i] {
                if seen.insert(j) {
                    queue.push(j);
                }
            }
        }
        seen
    }

    /// BFS parent map from the entry specs: `parents[i]` is the index this
    /// fn was first discovered from (entries map to themselves). Shortest
    /// call chains for census evidence are read out of this.
    pub fn parents_from(&self, specs: &[String]) -> BTreeMap<usize, usize> {
        let mut seeds: BTreeSet<usize> = BTreeSet::new();
        for spec in specs {
            seeds.extend(self.match_spec(spec));
        }
        self.parents_from_set(&seeds)
    }

    /// Shortest call chain (entry → … → fn `i`) as qualified names.
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, i: usize) -> Vec<String> {
        let mut rev = vec![i];
        let mut cur = i;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter().map(|k| self.fns[k].qualified()).collect()
    }

    /// Hot token ranges per file: path → body ranges of hot fns.
    pub fn hot_ranges(&self, hot: &BTreeSet<usize>) -> BTreeMap<String, Vec<(usize, usize)>> {
        let mut out: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for &i in hot {
            if let Some(range) = self.fns[i].body {
                out.entry(self.fns[i].file.clone()).or_default().push(range);
            }
        }
        out
    }
}

/// Workspace type knowledge the resolver narrows with.
struct TypeTables<'a> {
    structs: &'a BTreeMap<String, BTreeMap<String, String>>,
    traits: &'a BTreeSet<String>,
}

/// Type evidence for a plain-ident receiver: declared param types first,
/// then `for`-loop element bindings (`for layer in &self.layers` resolves
/// `layer` to the *last identifier* of the field's declared type — the
/// innermost element type, since `Vec<Vec<TagConv>>` erases to `TagConv`.
/// Nested containers and chained loops over locals therefore all bind to
/// the same innermost type, which is exactly what the loops iterate).
/// Local-to-local chains are chased a bounded number of hops.
fn local_type<'a>(
    tables: &TypeTables<'a>,
    caller: &'a FnNode,
    name: &str,
    depth: usize,
) -> Option<&'a str> {
    if depth > 4 {
        return None;
    }
    if let Some((_, t)) = caller.params.iter().find(|(n, _)| n == name) {
        return Some(t.as_str());
    }
    let (_, src) = caller.loop_elems.iter().find(|(b, _)| b == name)?;
    if let Some(field) = src.strip_prefix("self.") {
        return tables
            .structs
            .get(caller.receiver.as_deref()?)?
            .get(field)
            .map(|t| t.as_str());
    }
    local_type(tables, caller, src, depth + 1)
}

/// Resolve one call against the symbol table. Returns `None` when nothing
/// in the workspace matches (→ unresolved report).
fn resolve(
    fns: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    tables: &TypeTables,
    caller: &FnNode,
    call: &CallSite,
) -> Option<Vec<usize>> {
    let candidates = by_name.get(call.name.as_str())?;
    let pick = |pred: &dyn Fn(&FnNode) -> bool| -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&i| pred(&fns[i]))
            .collect()
    };
    match &call.kind {
        CallKind::Method {
            recv_ident,
            recv_base,
        } => {
            // `STATIC.load(…)` / `GATE.store(…)`: a SCREAMING_CASE receiver
            // is a static — its methods are std atomics/lazies, not
            // workspace dispatch. Report unresolved instead of linking the
            // name to unrelated workspace fns (e.g. dataset `load`).
            if recv_ident.as_deref().is_some_and(is_screaming_case) {
                return None;
            }
            let methods = pick(&|f| f.receiver.is_some());
            // Positive receiver evidence narrows the candidate set:
            // `self.f(…)` → the caller's own impl; a declared param type
            // (`ctx: &mut InferCtx` → `ctx.f(…)`) or a struct field type
            // (`self.l0.f(…)` with `l0: GcnLayer`) → methods of that type;
            // `tape.f(…)` → a type whose lowercased name matches.
            if let Some(recv) = recv_ident.as_deref() {
                if recv == "self" && caller.receiver.is_some() {
                    let own: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].receiver == caller.receiver)
                        .collect();
                    if !own.is_empty() {
                        return Some(own);
                    }
                } else {
                    // Declared-type evidence. Narrowing is skipped for trait
                    // types (`model: &dyn GraphModel`): restricting to the
                    // trait's own (default/bodiless) methods would hide every
                    // implementor and break dispatch over-approximation.
                    let declared: Option<&str> = if recv_base.as_deref() == Some("self") {
                        caller
                            .receiver
                            .as_deref()
                            .and_then(|r| tables.structs.get(r))
                            .and_then(|fields| fields.get(recv))
                            .map(|t| t.as_str())
                    } else {
                        local_type(tables, caller, recv, 0)
                    };
                    if let Some(ty) = declared.filter(|t| !tables.traits.contains(*t)) {
                        let typed: Vec<usize> = methods
                            .iter()
                            .copied()
                            .filter(|&i| fns[i].receiver.as_deref() == Some(ty))
                            .collect();
                        if !typed.is_empty() {
                            return Some(typed);
                        }
                        // A declared workspace struct type with no inherent
                        // method of that name: it may still be a workspace
                        // trait's default body (receiver = the trait name);
                        // otherwise the call goes to a std/derive impl
                        // (`cfg.clone()`, `map.get(…)` on a BTreeMap field) —
                        // treat as non-workspace rather than falling back to
                        // the all-methods heuristic.
                        if tables.structs.contains_key(ty) {
                            let via_trait: Vec<usize> = methods
                                .iter()
                                .copied()
                                .filter(|&i| {
                                    fns[i]
                                        .receiver
                                        .as_deref()
                                        .is_some_and(|r| tables.traits.contains(r))
                                })
                                .collect();
                            if !via_trait.is_empty() {
                                return Some(via_trait);
                            }
                            return None;
                        }
                    }
                    let typed: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&i| {
                            fns[i]
                                .receiver
                                .as_deref()
                                .is_some_and(|r| r.eq_ignore_ascii_case(recv))
                        })
                        .collect();
                    if !typed.is_empty() {
                        return Some(typed);
                    }
                }
            }
            // Without evidence, std-staple names (`len`, `push`, `split`,
            // `iter`, …) are overwhelmingly std container/iterator calls —
            // linking them by bare name would pull arbitrary workspace
            // types into the hot set. Report unresolved instead.
            if STD_METHOD_STAPLES.contains(&call.name.as_str()) {
                return None;
            }
            // Method-receiver heuristic: any workspace method of that name
            // (this is what keeps `dyn GraphModel` trait dispatch visible).
            // A method call can never target a free fn — falling back to
            // free candidates would link `m.lock()` to an unrelated free
            // `lock()` accessor — so no-methods means non-workspace.
            if !methods.is_empty() {
                return Some(methods);
            }
            None
        }
        CallKind::Free => {
            // Same-crate free fns first (plain `helper()` is almost always
            // a sibling), then any free fn, then anything by name.
            let same_crate = pick(&|f| f.receiver.is_none() && f.krate == caller.krate);
            if !same_crate.is_empty() {
                return Some(same_crate);
            }
            let free = pick(&|f| f.receiver.is_none());
            if !free.is_empty() {
                return Some(free);
            }
            Some(candidates.clone())
        }
        CallKind::Path(qual) => {
            // `Self::f` → the caller's own impl block.
            if qual == "Self" {
                let own = pick(&|f| f.receiver == caller.receiver);
                if !own.is_empty() {
                    return Some(own);
                }
            }
            // `Type::f` → methods of that type.
            let typed = pick(&|f| f.receiver.as_deref() == Some(qual.as_str()));
            if !typed.is_empty() {
                return Some(typed);
            }
            // `module::f` → fns whose module path ends with the qualifier.
            let in_mod = pick(&|f| f.module.last().map(|m| m == qual).unwrap_or(false));
            if !in_mod.is_empty() {
                return Some(in_mod);
            }
            // `crate_name::f` (with `-`/`_` normalization).
            let q_norm = qual.replace('-', "_");
            let in_crate = pick(&|f| f.krate == q_norm);
            if !in_crate.is_empty() {
                return Some(in_crate);
            }
            // `crate::` / `self::` / `super::` → same crate.
            if qual == "crate" || qual == "self" || qual == "super" {
                let same = pick(&|f| f.krate == caller.krate);
                if !same.is_empty() {
                    return Some(same);
                }
            }
            // Unknown qualifier: a type/module outside the workspace (std,
            // shim, enum ctor). Linking by bare name here would make every
            // `Vec::new()` in hot code mark every workspace constructor
            // hot — report unresolved instead.
            None
        }
    }
}

/// Method names that are std container/iterator/IO staples. Without
/// positive receiver evidence these resolve as std (→ unresolved report),
/// not as workspace edges: one `rest.split('/')` must not mark
/// `GraphDataset::split` hot.
const STD_METHOD_STAPLES: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "count",
    "collect",
    "extend",
    "split",
    "split_at",
    "split_once",
    "split_whitespace",
    "join",
    "clone",
    "to_vec",
    "to_string",
    "parse",
    "trim",
    "starts_with",
    "ends_with",
    "chars",
    "lines",
    "load",
    "store",
    "swap",
    "take",
    "replace",
    "last",
    "first",
    "sort",
    "sort_by",
    "reverse",
    "resize",
    "truncate",
    "drain",
    "entry",
    "keys",
    "values",
    "position",
    "find",
    "any",
    "all",
    "zip",
    "rev",
    "skip",
    "enumerate",
    "flat_map",
    "push_str",
    "write",
    "read",
    "flush",
];

/// Free/associated std names filtered out of the *actionable* unresolved
/// report (they stay in [`CallGraph::unresolved`]): `Vec::new`,
/// `f32::max`, `Option::unwrap_or`, … resolve to nothing in the workspace
/// by design, and listing hundreds of them buries the callees a human
/// should actually look at.
const STD_FREE_STAPLES: &[&str] = &[
    "new",
    "with_capacity",
    "default",
    "from",
    "try_from",
    "try_into",
    "into",
    "from_str",
    "to_owned",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_or",
    "map_err",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "or_insert",
    "or_insert_with",
    "or_default",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_deref",
    "as_str",
    "as_slice",
    "as_bytes",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "clamp",
    "fract",
    "is_finite",
    "is_nan",
    "to_bits",
    "from_bits",
    "min_by_key",
    "max_by_key",
    "copied",
    "cloned",
    "chunks",
    "chunks_exact",
    "windows",
    "saturating_sub",
    "saturating_add",
    "saturating_mul",
    "checked_sub",
    "checked_add",
    "checked_mul",
    "checked_div",
    "wrapping_sub",
    "wrapping_add",
    "to_le_bytes",
    "to_be_bytes",
    "from_le_bytes",
    "from_be_bytes",
    "swap_remove",
    "retain",
    "dedup",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "partition_point",
    "rotate_left",
    "rotate_right",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "split_at_mut",
    "split_first",
    "split_last",
    "size_of",
    "align_of",
    "forget",
    "drop",
    "exit",
    "args",
    "var",
    "var_os",
    "current_dir",
    "display",
    "to_path_buf",
    "read_to_string",
    "create",
    "create_dir_all",
    "remove_file",
    "rename",
    "exists",
    "is_dir",
    "is_file",
    "extension",
    "file_name",
    "strip_prefix",
    "strip_suffix",
    "trim_start_matches",
    "trim_end_matches",
    "eq_ignore_ascii_case",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_lowercase",
    "to_uppercase",
    "is_alphanumeric",
    "is_ascii_digit",
    "is_ascii_lowercase",
    "is_ascii_uppercase",
    "available_parallelism",
    "spawn",
    "scope",
    "sleep",
    "elapsed",
    "duration_since",
    "as_secs_f64",
    "as_millis",
    "as_micros",
    "as_nanos",
];

/// `STATE`, `REGISTRY`, `A_B2` — the static-item naming convention.
fn is_screaming_case(s: &str) -> bool {
    s.len() >= 2
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// Convenience carried around by lib.rs: a built graph plus its derived
/// hot information for one configuration.
pub struct HotAnalysis {
    pub graph: CallGraph,
    /// Fns reachable from `Config::hot_entry_points`.
    pub hot: BTreeSet<usize>,
    /// path → hot body token ranges.
    pub hot_ranges: BTreeMap<String, Vec<(usize, usize)>>,
}

impl HotAnalysis {
    pub fn new(files: &[FileSyntax], hot_entry_points: &[String]) -> HotAnalysis {
        let graph = CallGraph::build(files);
        let hot = graph.reachable(hot_entry_points);
        let hot_ranges = graph.hot_ranges(&hot);
        HotAnalysis {
            graph,
            hot,
            hot_ranges,
        }
    }
}

/// Resolve fn-name specs (same syntax as entry points) to per-file body
/// ranges — used for the opt-in `hot-index` rule.
pub fn spec_ranges(graph: &CallGraph, specs: &[String]) -> BTreeMap<String, Vec<(usize, usize)>> {
    let mut set: BTreeSet<usize> = BTreeSet::new();
    for spec in specs {
        set.extend(graph.match_spec(spec));
    }
    graph.hot_ranges(&set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::FileSyntax;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<FileSyntax> = files.iter().map(|(p, s)| FileSyntax::parse(p, s)).collect();
        CallGraph::build(&parsed)
    }

    fn names(g: &CallGraph, set: &BTreeSet<usize>) -> Vec<String> {
        set.iter().map(|&i| g.fns[i].qualified()).collect()
    }

    #[test]
    fn cycles_terminate_and_stay_hot() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn entry() { ping(); } fn ping() { pong(); } fn pong() { ping(); }",
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        assert_eq!(hot.len(), 3, "{:?}", names(&g, &hot));
    }

    #[test]
    fn declared_param_types_narrow_method_dispatch() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct A; struct B;
            impl A { fn score(&self) -> f32 { 1.0 } }
            impl B { fn score(&self) -> f32 { 2.0 } }
            fn entry(x: &A) -> f32 { x.score() }
            "#,
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        // `x: &A` is positive type evidence: only `A::score` links.
        let n = names(&g, &hot);
        assert_eq!(hot.len(), 2, "{n:?}");
        assert!(n.iter().any(|q| q.ends_with("A::score")), "{n:?}");
    }

    #[test]
    fn method_name_collisions_without_evidence_over_approximate() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct A; struct B;
            impl A { fn score(&self) -> f32 { 1.0 } }
            impl B { fn score(&self) -> f32 { 2.0 } }
            fn entry<M>(x: &M) -> f32 { x.score() }
            "#,
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        // `M` names no workspace type: name-based dispatch cannot
        // distinguish receivers, and over-approximating keeps rules sound.
        assert_eq!(hot.len(), 3, "{:?}", names(&g, &hot));
    }

    #[test]
    fn dyn_trait_params_keep_every_implementor_linked() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            trait Model: Send { fn score(&self) -> f32; }
            struct A; struct B;
            impl Model for A { fn score(&self) -> f32 { 1.0 } }
            impl Model for B { fn score(&self) -> f32 { 2.0 } }
            fn entry(m: &dyn Model) -> f32 { m.score() }
            "#,
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        let n = names(&g, &hot);
        // Narrowing to the trait's own (bodiless) decl would hide both
        // impls; trait-typed evidence must NOT narrow.
        assert!(n.iter().any(|q| q.contains("A::score")), "{n:?}");
        assert!(n.iter().any(|q| q.contains("B::score")), "{n:?}");
    }

    #[test]
    fn struct_field_types_resolve_self_field_calls() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct Layer; struct Other;
            impl Layer { fn forward(&self) {} }
            impl Other { fn forward(&self) {} }
            struct Net { l0: Layer }
            impl Net {
                fn entry(&self) { self.l0.forward(); }
            }
            "#,
        )]);
        let hot = g.reachable(&["Net::entry".to_string()]);
        let n = names(&g, &hot);
        assert!(n.iter().any(|q| q.ends_with("Layer::forward")), "{n:?}");
        assert!(!n.iter().any(|q| q.ends_with("Other::forward")), "{n:?}");
    }

    #[test]
    fn loop_element_bindings_narrow_method_dispatch() {
        // `for layer in &self.layers` binds `layer` to the container's
        // element type; calls through it must not fall back to the
        // all-methods heuristic (which would drag in the trait default).
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct Layer; struct Other;
            impl Layer { fn forward(&self) {} }
            impl Other { fn forward(&self) {} }
            struct Net { layers: Vec<Layer> }
            impl Net {
                fn entry(&self) {
                    for layer in &self.layers {
                        layer.forward();
                    }
                }
            }
            "#,
        )]);
        let hot = g.reachable(&["Net::entry".to_string()]);
        let n = names(&g, &hot);
        assert!(n.iter().any(|q| q.ends_with("Layer::forward")), "{n:?}");
        assert!(!n.iter().any(|q| q.ends_with("Other::forward")), "{n:?}");
    }

    #[test]
    fn indexed_field_receivers_narrow_method_dispatch() {
        // `self.pools[d].forward()` walks back over the `[d]` index to the
        // field and uses its declared element type.
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct Pool; struct Other;
            impl Pool { fn forward(&self) {} }
            impl Other { fn forward(&self) {} }
            struct Net { pools: Vec<Pool> }
            impl Net {
                fn entry(&self, d: usize) { self.pools[d].forward(); }
            }
            "#,
        )]);
        let hot = g.reachable(&["Net::entry".to_string()]);
        let n = names(&g, &hot);
        assert!(n.iter().any(|q| q.ends_with("Pool::forward")), "{n:?}");
        assert!(!n.iter().any(|q| q.ends_with("Other::forward")), "{n:?}");
    }

    #[test]
    fn method_calls_never_resolve_to_free_fns() {
        // A `recv.lock()` method call must not link to a free fn named
        // `lock` — the receiver rules out the free-fn form entirely.
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn lock() { leaf(); }
            fn leaf() {}
            struct S { m: Mutex<u32> }
            impl S {
                fn entry(&self) { let _g = self.m.lock(); }
            }
            "#,
        )]);
        let hot = g.reachable(&["S::entry".to_string()]);
        let n = names(&g, &hot);
        assert!(!n.iter().any(|q| q.ends_with("::lock")), "{n:?}");
        assert!(!n.iter().any(|q| q.ends_with("::leaf")), "{n:?}");
    }

    #[test]
    fn fn_references_are_edges() {
        // `process(&crate::features::node_features)` passes the fn as a
        // value — the callee must still become reachable.
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { process(&crate::features::node_features); } \
                 pub fn process(f: &dyn Fn()) { }",
            ),
            (
                "crates/a/src/features.rs",
                "pub fn node_features() { leaf(); } fn leaf() {}",
            ),
        ]);
        let hot = g.reachable(&["entry".to_string()]);
        let n = names(&g, &hot);
        assert!(
            n.iter().any(|q| q.ends_with("features::node_features")),
            "{n:?}"
        );
        assert!(n.iter().any(|q| q.ends_with("features::leaf")), "{n:?}");
    }

    #[test]
    fn actionable_unresolved_filters_variant_ctors_and_staples() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            enum E { Leaf(u32) }
            fn entry(x: Option<u32>) -> Option<E> {
                let v = Vec::new();
                v.iter();
                mystery_callee();
                x.map(E::Leaf);
                Some(E::Leaf(2))
            }
            "#,
        )]);
        // Raw unresolved keeps everything…
        assert!(g.unresolved.contains_key("Some"), "{:?}", g.unresolved);
        assert!(g.unresolved.contains_key("iter"));
        // …the actionable view drops variant ctors (capitalized) and std
        // staples, keeping the genuinely unknown callee.
        let act = g.actionable_unresolved();
        assert!(act.contains_key("mystery_callee"), "{act:?}");
        assert!(
            !act.keys()
                .any(|k| k.chars().next().unwrap().is_ascii_uppercase()),
            "{act:?}"
        );
        assert!(!act.contains_key("iter"), "{act:?}");
        assert!(!act.contains_key("new"), "{act:?}");
    }

    #[test]
    fn qualified_calls_prefer_the_named_type() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct A; struct B;
            impl A { fn make() -> A { A } }
            impl B { fn make() -> B { B } }
            fn entry() { A::make(); }
            "#,
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        let n = names(&g, &hot);
        assert!(n.iter().any(|q| q.ends_with("A::make")), "{n:?}");
        assert!(!n.iter().any(|q| q.ends_with("B::make")), "{n:?}");
    }

    #[test]
    fn file_level_modules_resolve_qualified_free_calls() {
        // `par::ordered_map(..)` must resolve to the fn living in
        // crates/tensor/src/par.rs: the file path contributes the `par`
        // module segment even though the file has no inline `mod par`.
        let g = graph_of(&[
            (
                "crates/tensor/src/batch.rs",
                "pub fn assess_batch() { par::ordered_map(); }",
            ),
            (
                "crates/tensor/src/par.rs",
                "pub fn ordered_map() { loop {} }",
            ),
        ]);
        let hot = g.reachable(&["assess_batch".to_string()]);
        let n = names(&g, &hot);
        assert!(
            n.iter().any(|q| q == "glint_tensor::par::ordered_map"),
            "{n:?}"
        );
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let g = graph_of(&[
            (
                "crates/core/src/detector.rs",
                "impl Detector { pub fn assess(&self) { spmm(); } }",
            ),
            (
                "crates/tensor/src/csr.rs",
                "pub fn spmm() { inner_kernel(); } fn inner_kernel() {}",
            ),
        ]);
        let hot = g.reachable(&["Detector::assess".to_string()]);
        let n = names(&g, &hot);
        assert!(
            n.contains(&"glint_tensor::csr::inner_kernel".to_string()),
            "{n:?}"
        );
    }

    #[test]
    fn cfg_test_callers_are_excluded_entirely() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            fn kernel() {}
            #[cfg(test)]
            mod tests {
                fn entry() { kernel(); }
            }
            "#,
        )]);
        // The test-only caller is not even a node…
        assert_eq!(g.fns.len(), 1);
        // …so seeding from its name reaches nothing.
        let hot = g.reachable(&["entry".to_string()]);
        assert!(hot.is_empty());
    }

    #[test]
    fn wildcard_specs_match_every_method_of_a_type() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl Tape { fn matmul(&self) {} fn relu(&self) {} } fn free() {}",
        )]);
        let hot = g.reachable(&["Tape::*".to_string()]);
        assert_eq!(hot.len(), 2, "{:?}", names(&g, &hot));
    }

    #[test]
    fn unresolved_calls_are_reported_not_dropped() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn entry(v: &[f32]) -> f32 { v.iter().copied().fold(0.0, f32::max) }",
        )]);
        assert!(g.unresolved.contains_key("iter"), "{:?}", g.unresolved);
        assert!(g.unresolved.contains_key("fold"), "{:?}", g.unresolved);
    }

    #[test]
    fn chains_walk_back_to_the_entry() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid(); } fn mid() { leaf(); } fn leaf() {}",
        )]);
        let parents = g.parents_from(&["entry".to_string()]);
        let leaf = g.match_spec("leaf")[0];
        let chain = g.chain(&parents, leaf);
        assert_eq!(
            chain,
            vec![
                "glint_a::entry".to_string(),
                "glint_a::mid".to_string(),
                "glint_a::leaf".to_string()
            ]
        );
    }
}
