//! Workspace-wide approximate call graph over the syntax layer's symbol
//! tables, plus hot-set propagation from declared entry points.
//!
//! Resolution is name-based with method-receiver heuristics — NOT type
//! checked. The soundness posture (documented in DESIGN.md):
//!
//! * **over-approximation**: a method call `x.embed(…)` links to *every*
//!   workspace fn named `embed` that has a receiver — this is exactly what
//!   makes trait dispatch (`dyn GraphModel`) visible without types, at the
//!   cost of possible false edges. False edges can only make *more* code
//!   hot, never hide hot code, so the panic-safety rules stay conservative;
//! * **under-approximation**: calls through function pointers/closures
//!   passed as values, macro-generated calls, and calls into `std` are not
//!   edges. Qualified calls whose qualifier names nothing in the workspace
//!   (`Vec::new`, `f32::max`) and method calls on SCREAMING_CASE statics
//!   (`STATE.load(…)` — std atomics/lazies) are treated as std too, rather
//!   than linked to every same-named workspace fn. Calls that match no
//!   workspace symbol are *reported* in [`CallGraph::unresolved`] rather
//!   than silently dropped.
//!
//! `#[cfg(test)]` functions are excluded from the graph entirely: they
//! neither seed hotness nor extend chains (test callers must not make
//! library code hot).

use crate::syntax::{CallKind, CallSite, FileSyntax};
use std::collections::{BTreeMap, BTreeSet};

/// One function node in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Workspace-relative file path (`crates/tensor/src/par.rs`).
    pub file: String,
    /// Crate name derived from the path (`glint-tensor` → `glint_tensor`;
    /// the root package is `glint_suite`).
    pub krate: String,
    pub name: String,
    pub receiver: Option<String>,
    pub module: Vec<String>,
    pub line: u32,
    /// Body token range into that file's token vector.
    pub body: Option<(usize, usize)>,
    pub cfg_feature: Option<String>,
    pub calls: Vec<CallSite>,
}

impl FnNode {
    /// `crate::module::Receiver::name`, the display identity used in
    /// reports and call chains.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = vec![self.krate.as_str()];
        for m in &self.module {
            parts.push(m);
        }
        if let Some(r) = &self.receiver {
            parts.push(r);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Adjacency: `edges[i]` = indices of fns that `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
    /// Calls that matched no workspace symbol: callee name → count.
    /// (Mostly std/shim calls; reported, never dropped.)
    pub unresolved: BTreeMap<String, usize>,
    /// Total resolved call edges (before dedup), for the report.
    pub resolved_calls: usize,
}

/// Module segments a file contributes by its location: Rust's file-tree
/// module structure. `crates/tensor/src/par.rs` → `["par"]`,
/// `crates/gnn/src/models/gin.rs` → `["models", "gin"]`; `lib.rs`,
/// `main.rs`, and `mod.rs` contribute their directories only. Without
/// this, `par::ordered_map(…)` cannot resolve — inline `mod` blocks are
/// not the only way code gets a module path.
pub fn file_modules(path: &str) -> Vec<String> {
    let rest = path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, r)| r)
        .unwrap_or(path);
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let mut mods: Vec<String> = rest.split('/').map(|s| s.to_string()).collect();
    if let Some(last) = mods.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
        if last == "lib" || last == "main" || last == "mod" {
            mods.pop();
        }
    }
    mods
}

/// Derive the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or(rest);
        format!("glint_{}", krate.replace('-', "_"))
    } else if path.starts_with("src/") {
        "glint_suite".to_string()
    } else {
        // Fixture/masquerade paths: first component.
        path.split('/').next().unwrap_or(path).replace('-', "_")
    }
}

impl CallGraph {
    /// Build the graph from parsed files. `#[cfg(test)]` fns are dropped
    /// here — they are not nodes at all.
    pub fn build(files: &[FileSyntax]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        for fs in files {
            let krate = crate_of(&fs.path);
            let file_mods = file_modules(&fs.path);
            for f in &fs.fns {
                if f.is_test {
                    continue;
                }
                let mut module = file_mods.clone();
                module.extend(f.module.iter().cloned());
                fns.push(FnNode {
                    file: fs.path.clone(),
                    krate: krate.clone(),
                    name: f.name.clone(),
                    receiver: f.receiver.clone(),
                    module,
                    line: f.line,
                    body: f.body,
                    cfg_feature: f.cfg_feature.clone(),
                    calls: f.calls.clone(),
                });
            }
        }
        // Deterministic node order regardless of input file order.
        fns.sort_by(|a, b| {
            (&a.file, a.line, &a.name, &a.receiver).cmp(&(&b.file, b.line, &b.name, &b.receiver))
        });

        // Indices for resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut unresolved: BTreeMap<String, usize> = BTreeMap::new();
        let mut resolved_calls = 0usize;
        for i in 0..fns.len() {
            let caller = fns[i].clone();
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &caller.calls {
                match resolve(&fns, &by_name, &caller, call) {
                    Some(targets) => {
                        resolved_calls += 1;
                        out.extend(targets);
                    }
                    None => {
                        *unresolved.entry(call.name.clone()).or_insert(0) += 1;
                    }
                }
            }
            edges[i] = out.into_iter().collect();
        }
        CallGraph {
            fns,
            edges,
            unresolved,
            resolved_calls,
        }
    }

    /// Indices of fns matching an entry-point spec:
    /// * `name` — every fn with that name, method or free;
    /// * `Recv::name` — fns named `name` whose receiver is `Recv`;
    /// * `Recv::*` — every method of `Recv`.
    pub fn match_spec(&self, spec: &str) -> Vec<usize> {
        match spec.split_once("::") {
            Some((recv, name)) => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.receiver.as_deref() == Some(recv) && (name == "*" || f.name == name)
                })
                .map(|(i, _)| i)
                .collect(),
            None => self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name == spec)
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Forward reachability from the given entry-point specs: the hot set.
    pub fn reachable(&self, specs: &[String]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = Vec::new();
        for spec in specs {
            for i in self.match_spec(spec) {
                if seen.insert(i) {
                    queue.push(i);
                }
            }
        }
        while let Some(i) = queue.pop() {
            for &j in &self.edges[i] {
                if seen.insert(j) {
                    queue.push(j);
                }
            }
        }
        seen
    }

    /// BFS parent map from the entry specs: `parents[i]` is the index this
    /// fn was first discovered from (entries map to themselves). Shortest
    /// call chains for census evidence are read out of this.
    pub fn parents_from(&self, specs: &[String]) -> BTreeMap<usize, usize> {
        let mut parents: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = Vec::new();
        for spec in specs {
            for i in self.match_spec(spec) {
                parents.entry(i).or_insert(i);
                frontier.push(i);
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &i in &frontier {
                for &j in &self.edges[i] {
                    if let std::collections::btree_map::Entry::Vacant(e) = parents.entry(j) {
                        e.insert(i);
                        next.push(j);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        parents
    }

    /// Shortest call chain (entry → … → fn `i`) as qualified names.
    pub fn chain(&self, parents: &BTreeMap<usize, usize>, i: usize) -> Vec<String> {
        let mut rev = vec![i];
        let mut cur = i;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter().map(|k| self.fns[k].qualified()).collect()
    }

    /// Hot token ranges per file: path → body ranges of hot fns.
    pub fn hot_ranges(&self, hot: &BTreeSet<usize>) -> BTreeMap<String, Vec<(usize, usize)>> {
        let mut out: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for &i in hot {
            if let Some(range) = self.fns[i].body {
                out.entry(self.fns[i].file.clone()).or_default().push(range);
            }
        }
        out
    }
}

/// Resolve one call against the symbol table. Returns `None` when nothing
/// in the workspace matches (→ unresolved report).
fn resolve(
    fns: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnNode,
    call: &CallSite,
) -> Option<Vec<usize>> {
    let candidates = by_name.get(call.name.as_str())?;
    let pick = |pred: &dyn Fn(&FnNode) -> bool| -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&i| pred(&fns[i]))
            .collect()
    };
    match &call.kind {
        CallKind::Method { recv_ident } => {
            // `STATIC.load(…)` / `GATE.store(…)`: a SCREAMING_CASE receiver
            // is a static — its methods are std atomics/lazies, not
            // workspace dispatch. Report unresolved instead of linking the
            // name to unrelated workspace fns (e.g. dataset `load`).
            if recv_ident.as_deref().is_some_and(is_screaming_case) {
                return None;
            }
            let methods = pick(&|f| f.receiver.is_some());
            // Positive receiver evidence narrows the candidate set:
            // `self.f(…)` → the caller's own impl; `tape.f(…)` → a type
            // whose lowercased name matches the receiver ident.
            if let Some(recv) = recv_ident.as_deref() {
                if recv == "self" && caller.receiver.is_some() {
                    let own: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].receiver == caller.receiver)
                        .collect();
                    if !own.is_empty() {
                        return Some(own);
                    }
                } else {
                    let typed: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&i| {
                            fns[i]
                                .receiver
                                .as_deref()
                                .is_some_and(|r| r.eq_ignore_ascii_case(recv))
                        })
                        .collect();
                    if !typed.is_empty() {
                        return Some(typed);
                    }
                }
            }
            // Without evidence, std-staple names (`len`, `push`, `split`,
            // `iter`, …) are overwhelmingly std container/iterator calls —
            // linking them by bare name would pull arbitrary workspace
            // types into the hot set. Report unresolved instead.
            if STD_METHOD_STAPLES.contains(&call.name.as_str()) {
                return None;
            }
            // Method-receiver heuristic: any workspace method of that name
            // (this is what keeps `dyn GraphModel` trait dispatch visible);
            // free fns only as fallback.
            if !methods.is_empty() {
                return Some(methods);
            }
            Some(candidates.clone())
        }
        CallKind::Free => {
            // Same-crate free fns first (plain `helper()` is almost always
            // a sibling), then any free fn, then anything by name.
            let same_crate = pick(&|f| f.receiver.is_none() && f.krate == caller.krate);
            if !same_crate.is_empty() {
                return Some(same_crate);
            }
            let free = pick(&|f| f.receiver.is_none());
            if !free.is_empty() {
                return Some(free);
            }
            Some(candidates.clone())
        }
        CallKind::Path(qual) => {
            // `Self::f` → the caller's own impl block.
            if qual == "Self" {
                let own = pick(&|f| f.receiver == caller.receiver);
                if !own.is_empty() {
                    return Some(own);
                }
            }
            // `Type::f` → methods of that type.
            let typed = pick(&|f| f.receiver.as_deref() == Some(qual.as_str()));
            if !typed.is_empty() {
                return Some(typed);
            }
            // `module::f` → fns whose module path ends with the qualifier.
            let in_mod = pick(&|f| f.module.last().map(|m| m == qual).unwrap_or(false));
            if !in_mod.is_empty() {
                return Some(in_mod);
            }
            // `crate_name::f` (with `-`/`_` normalization).
            let q_norm = qual.replace('-', "_");
            let in_crate = pick(&|f| f.krate == q_norm);
            if !in_crate.is_empty() {
                return Some(in_crate);
            }
            // `crate::` / `self::` / `super::` → same crate.
            if qual == "crate" || qual == "self" || qual == "super" {
                let same = pick(&|f| f.krate == caller.krate);
                if !same.is_empty() {
                    return Some(same);
                }
            }
            // Unknown qualifier: a type/module outside the workspace (std,
            // shim, enum ctor). Linking by bare name here would make every
            // `Vec::new()` in hot code mark every workspace constructor
            // hot — report unresolved instead.
            None
        }
    }
}

/// Method names that are std container/iterator/IO staples. Without
/// positive receiver evidence these resolve as std (→ unresolved report),
/// not as workspace edges: one `rest.split('/')` must not mark
/// `GraphDataset::split` hot.
const STD_METHOD_STAPLES: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "count",
    "collect",
    "extend",
    "split",
    "split_at",
    "split_once",
    "split_whitespace",
    "join",
    "clone",
    "to_vec",
    "to_string",
    "parse",
    "trim",
    "starts_with",
    "ends_with",
    "chars",
    "lines",
    "load",
    "store",
    "swap",
    "take",
    "replace",
    "last",
    "first",
    "sort",
    "sort_by",
    "reverse",
    "resize",
    "truncate",
    "drain",
    "entry",
    "keys",
    "values",
    "position",
    "find",
    "any",
    "all",
    "zip",
    "rev",
    "skip",
    "enumerate",
    "flat_map",
    "push_str",
    "write",
    "read",
    "flush",
];

/// `STATE`, `REGISTRY`, `A_B2` — the static-item naming convention.
fn is_screaming_case(s: &str) -> bool {
    s.len() >= 2
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// Convenience carried around by lib.rs: a built graph plus its derived
/// hot information for one configuration.
pub struct HotAnalysis {
    pub graph: CallGraph,
    /// Fns reachable from `Config::hot_entry_points`.
    pub hot: BTreeSet<usize>,
    /// path → hot body token ranges.
    pub hot_ranges: BTreeMap<String, Vec<(usize, usize)>>,
}

impl HotAnalysis {
    pub fn new(files: &[FileSyntax], hot_entry_points: &[String]) -> HotAnalysis {
        let graph = CallGraph::build(files);
        let hot = graph.reachable(hot_entry_points);
        let hot_ranges = graph.hot_ranges(&hot);
        HotAnalysis {
            graph,
            hot,
            hot_ranges,
        }
    }
}

/// Resolve fn-name specs (same syntax as entry points) to per-file body
/// ranges — used for the opt-in `hot-index` rule.
pub fn spec_ranges(graph: &CallGraph, specs: &[String]) -> BTreeMap<String, Vec<(usize, usize)>> {
    let mut set: BTreeSet<usize> = BTreeSet::new();
    for spec in specs {
        set.extend(graph.match_spec(spec));
    }
    graph.hot_ranges(&set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::FileSyntax;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<FileSyntax> = files.iter().map(|(p, s)| FileSyntax::parse(p, s)).collect();
        CallGraph::build(&parsed)
    }

    fn names(g: &CallGraph, set: &BTreeSet<usize>) -> Vec<String> {
        set.iter().map(|&i| g.fns[i].qualified()).collect()
    }

    #[test]
    fn cycles_terminate_and_stay_hot() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn entry() { ping(); } fn ping() { pong(); } fn pong() { ping(); }",
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        assert_eq!(hot.len(), 3, "{:?}", names(&g, &hot));
    }

    #[test]
    fn method_name_collisions_over_approximate() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct A; struct B;
            impl A { fn score(&self) -> f32 { 1.0 } }
            impl B { fn score(&self) -> f32 { 2.0 } }
            fn entry(x: &A) -> f32 { x.score() }
            "#,
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        // Both `score` methods are linked — name-based dispatch cannot
        // distinguish receivers, and over-approximating keeps rules sound.
        assert_eq!(hot.len(), 3, "{:?}", names(&g, &hot));
    }

    #[test]
    fn qualified_calls_prefer_the_named_type() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            struct A; struct B;
            impl A { fn make() -> A { A } }
            impl B { fn make() -> B { B } }
            fn entry() { A::make(); }
            "#,
        )]);
        let hot = g.reachable(&["entry".to_string()]);
        let n = names(&g, &hot);
        assert!(n.iter().any(|q| q.ends_with("A::make")), "{n:?}");
        assert!(!n.iter().any(|q| q.ends_with("B::make")), "{n:?}");
    }

    #[test]
    fn file_level_modules_resolve_qualified_free_calls() {
        // `par::ordered_map(..)` must resolve to the fn living in
        // crates/tensor/src/par.rs: the file path contributes the `par`
        // module segment even though the file has no inline `mod par`.
        let g = graph_of(&[
            (
                "crates/tensor/src/batch.rs",
                "pub fn assess_batch() { par::ordered_map(); }",
            ),
            (
                "crates/tensor/src/par.rs",
                "pub fn ordered_map() { loop {} }",
            ),
        ]);
        let hot = g.reachable(&["assess_batch".to_string()]);
        let n = names(&g, &hot);
        assert!(
            n.iter().any(|q| q == "glint_tensor::par::ordered_map"),
            "{n:?}"
        );
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let g = graph_of(&[
            (
                "crates/core/src/detector.rs",
                "impl Detector { pub fn assess(&self) { spmm(); } }",
            ),
            (
                "crates/tensor/src/csr.rs",
                "pub fn spmm() { inner_kernel(); } fn inner_kernel() {}",
            ),
        ]);
        let hot = g.reachable(&["Detector::assess".to_string()]);
        let n = names(&g, &hot);
        assert!(
            n.contains(&"glint_tensor::csr::inner_kernel".to_string()),
            "{n:?}"
        );
    }

    #[test]
    fn cfg_test_callers_are_excluded_entirely() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            fn kernel() {}
            #[cfg(test)]
            mod tests {
                fn entry() { kernel(); }
            }
            "#,
        )]);
        // The test-only caller is not even a node…
        assert_eq!(g.fns.len(), 1);
        // …so seeding from its name reaches nothing.
        let hot = g.reachable(&["entry".to_string()]);
        assert!(hot.is_empty());
    }

    #[test]
    fn wildcard_specs_match_every_method_of_a_type() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "impl Tape { fn matmul(&self) {} fn relu(&self) {} } fn free() {}",
        )]);
        let hot = g.reachable(&["Tape::*".to_string()]);
        assert_eq!(hot.len(), 2, "{:?}", names(&g, &hot));
    }

    #[test]
    fn unresolved_calls_are_reported_not_dropped() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn entry(v: &[f32]) -> f32 { v.iter().copied().fold(0.0, f32::max) }",
        )]);
        assert!(g.unresolved.contains_key("iter"), "{:?}", g.unresolved);
        assert!(g.unresolved.contains_key("fold"), "{:?}", g.unresolved);
    }

    #[test]
    fn chains_walk_back_to_the_entry() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid(); } fn mid() { leaf(); } fn leaf() {}",
        )]);
        let parents = g.parents_from(&["entry".to_string()]);
        let leaf = g.match_spec("leaf")[0];
        let chain = g.chain(&parents, leaf);
        assert_eq!(
            chain,
            vec![
                "glint_a::entry".to_string(),
                "glint_a::mid".to_string(),
                "glint_a::leaf".to_string()
            ]
        );
    }
}
