//! A small hand-written Rust lexer, just rich enough for token-pattern
//! linting: identifiers, numeric literals (with float detection), string /
//! raw-string / byte-string / char literals, lifetimes, multi-char operators,
//! and comments. String and comment *contents* never become code tokens, so
//! rule patterns cannot fire inside literals or doc comments — the classic
//! grep false-positive. Line numbers are 1-based.

/// Kind of a lexed token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    Str,
    Char,
    Lifetime,
    Punct,
}

/// One code token with its source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with the line it starts on. The leading
/// `//`, `///`, `//!` or `/*` marker is stripped from `text`.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    /// True for `//`-style comments (suppression pragmas must be these).
    pub is_line: bool,
}

/// Lexer output: the code token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first (maximal munch).
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Unterminated literals are tolerated
/// (the rest of the file becomes the literal) — the linter must never panic
/// on weird input.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: chars[start..j].iter().collect(),
                    is_line: true,
                });
                i = j;
            }
            '/' if next == Some('*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: chars[start..end.min(chars.len())].iter().collect(),
                    is_line: false,
                });
                i = j;
            }
            '"' => {
                let (tok, ni, nl) = lex_string(&chars, i, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
            }
            '\'' => {
                let (tok, ni) = lex_quote(&chars, i, line);
                out.toks.push(tok);
                i = ni;
            }
            _ if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(&chars, i, line);
                out.toks.push(tok);
                i = ni;
            }
            _ if is_ident_start(c) => {
                // Raw / byte string prefixes: r" r#" b" br" b' etc.
                if let Some((tok, ni, nl)) = try_lex_prefixed_literal(&chars, i, line) {
                    out.toks.push(tok);
                    i = ni;
                    line = nl;
                    continue;
                }
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                let mut matched = false;
                for op in MULTI_OPS {
                    let oplen = op.chars().count();
                    if i + oplen <= chars.len()
                        && chars[i..i + oplen].iter().collect::<String>() == **op
                    {
                        out.toks.push(Tok {
                            kind: TokKind::Punct,
                            text: (*op).to_string(),
                            line,
                        });
                        i += oplen;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Lex a `"…"` string starting at `i` (which must point at the quote).
/// Returns the token, the next index, and the updated line number. The
/// token's `text` is the raw content between the quotes (escapes are NOT
/// processed) — the syntax layer reads it for `cfg(feature = "…")`, and
/// rule patterns never match `Str` tokens, so keeping it is safe.
fn lex_string(chars: &[char], i: usize, mut line: u32) -> (Tok, usize, u32) {
    let start_line = line;
    let mut j = i + 1;
    let content_start = j;
    let mut content_end = chars.len();
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // An escaped newline (line continuation) still advances the
                // line counter; other escapes are opaque two-char units.
                if chars.get(j + 1) == Some(&'\n') {
                    line += 1;
                }
                j += 2;
            }
            '\n' => {
                line += 1;
                j += 1;
            }
            '"' => {
                content_end = j;
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text: chars[content_start..content_end.min(chars.len())]
                .iter()
                .collect(),
            line: start_line,
        },
        j.min(chars.len()),
        line,
    )
}

/// Lex a raw string `r"…"` / `r#"…"#` starting at the first `#` or `"`
/// (after the `r`/`br` prefix has been consumed by the caller).
fn lex_raw_string(chars: &[char], i: usize, mut line: u32) -> (Tok, usize, u32) {
    let start_line = line;
    let mut hashes = 0usize;
    let mut j = i;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        j += 1;
    }
    let content_start = j;
    let mut content_end = chars.len();
    while j < chars.len() {
        if chars[j] == '\n' {
            line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                content_end = j;
                j = k;
                break;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text: chars[content_start..content_end.min(chars.len())]
                .iter()
                .collect(),
            line: start_line,
        },
        j,
        line,
    )
}

/// `'x'` char literal vs `'a` lifetime, starting at the quote.
fn lex_quote(chars: &[char], i: usize, line: u32) -> (Tok, usize) {
    let next = chars.get(i + 1).copied();
    if next == Some('\\') {
        // Escaped char literal: the char right after the backslash is part
        // of the escape and is consumed unconditionally — `'\''` must not
        // stop at its own escaped quote — then scan to the closing quote.
        let mut j = i + 2;
        if j < chars.len() {
            j += 1;
        }
        while j < chars.len() && chars[j] != '\'' {
            j += if chars[j] == '\\' { 2 } else { 1 };
        }
        return (
            Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            },
            (j + 1).min(chars.len()),
        );
    }
    if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
        // 'x' — a single-char literal.
        return (
            Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            },
            i + 3,
        );
    }
    // Lifetime: 'ident (no closing quote).
    let mut j = i + 1;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Lifetime,
            text: chars[i..j].iter().collect(),
            line,
        },
        j,
    )
}

/// Numeric literal starting at a digit. Distinguishes floats from integers:
/// `1.5`, `1.`, `1e9`, `1.5e-3`, `1f32` are floats; `1`, `0xFF`, `1u8`,
/// `a.0` (tuple index — the lexer never starts a number at `.`) are not.
fn lex_number(chars: &[char], i: usize, line: u32) -> (Tok, usize) {
    let mut j = i;
    let mut is_float = false;
    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x') | Some('o') | Some('b')) {
        j = i + 2;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Int,
                text: chars[i..j].iter().collect(),
                line,
            },
            j,
        );
    }
    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    if chars.get(j) == Some(&'.') {
        let after = chars.get(j + 1).copied();
        let is_fractional = match after {
            Some(c) if c.is_ascii_digit() => true,
            Some('.') => false,                    // range: 1..n
            Some(c) if is_ident_start(c) => false, // method call: 1.max(x)
            _ => true,                             // trailing: `1.`
        };
        if is_fractional {
            is_float = true;
            j += 1;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    if matches!(chars.get(j), Some('e') | Some('E')) {
        let mut k = j + 1;
        if matches!(chars.get(k), Some('+') | Some('-')) {
            k += 1;
        }
        if chars.get(k).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            j = k;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix: f32/f64 force float; integer suffixes keep Int.
    if chars.get(j).is_some_and(|&c| is_ident_start(c)) {
        let s = j;
        let mut k = j;
        while k < chars.len() && is_ident_continue(chars[k]) {
            k += 1;
        }
        let suffix: String = chars[s..k].iter().collect();
        if suffix.ends_with("f32") || suffix.ends_with("f64") {
            is_float = true; // 1f32, 2.5_f64, …
        }
        j = k; // integer suffixes (u8, i64, usize, …) keep Int
    }
    (
        Tok {
            kind: if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            text: chars[i..j].iter().collect(),
            line,
        },
        j,
    )
}

/// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` at an ident-start
/// position. Returns `None` if this is a plain identifier.
fn try_lex_prefixed_literal(chars: &[char], i: usize, line: u32) -> Option<(Tok, usize, u32)> {
    let c = chars[i];
    let next = chars.get(i + 1).copied();
    let next2 = chars.get(i + 2).copied();
    match (c, next) {
        ('r', Some('"')) | ('r', Some('#')) => {
            // `r#foo` is a raw identifier, not a raw string.
            if next == Some('#') && next2.map(is_ident_start) == Some(true) {
                return None;
            }
            let (tok, ni, nl) = lex_raw_string(chars, i + 1, line);
            Some((tok, ni, nl))
        }
        ('b', Some('"')) => {
            let (tok, ni, nl) = lex_string(chars, i + 1, line);
            Some((tok, ni, nl))
        }
        ('b', Some('\'')) => {
            let (tok, ni) = lex_quote(chars, i + 1, line);
            Some((tok, ni, line))
        }
        ('b', Some('r')) if matches!(next2, Some('"') | Some('#')) => {
            let (tok, ni, nl) = lex_raw_string(chars, i + 2, line);
            Some((tok, ni, nl))
        }
        _ => None,
    }
}

/// Token-index ranges `[start, end)` covering every `#[cfg(test)]` item
/// (attribute + the item it decorates, up to the matching close brace or
/// terminating semicolon). Returned as ranges — rather than a stripped
/// stream — so the syntax layer's body ranges stay index-aligned with the
/// original token vector.
pub fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let start = i;
            let mut j = i + 7; // past `# [ cfg ( test ) ]`
                               // Skip any further attributes on the same item.
            while j < toks.len()
                && toks[j].text == "#"
                && toks.get(j + 1).map(|t| t.text.as_str()) == Some("[")
            {
                j = skip_balanced(toks, j + 1, "[", "]");
            }
            // Skip the item body: to the matching `}` of the first brace
            // block, or to a `;` if one terminates the item first.
            let mut depth = 0usize;
            let mut saw_brace = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "{" => {
                        depth += 1;
                        saw_brace = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if saw_brace && depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    ";" if !saw_brace => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push((start, j));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Remove tokens belonging to `#[cfg(test)]` items. Test-only code is
/// allowed to use whatever it likes — the invariants guard library code.
pub fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let ranges = cfg_test_ranges(toks);
    toks.iter()
        .enumerate()
        .filter(|(i, _)| !ranges.iter().any(|&(s, e)| *i >= s && *i < e))
        .map(|(_, t)| t.clone())
        .collect()
}

fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let texts: Vec<&str> = toks
        .iter()
        .skip(i)
        .take(7)
        .map(|t| t.text.as_str())
        .collect();
    texts == ["#", "[", "cfg", "(", "test", ")", "]"]
}

/// Starting with `toks[open_idx] == open`, return the index just past the
/// matching `close`.
fn skip_balanced(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < toks.len() {
        if toks[j].text == open {
            depth += 1;
        } else if toks[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r####"
            // HashMap in a comment
            /* partial_cmp().unwrap() in a block comment */
            let s = "HashMap::new()";
            let r = r#"Instant::now()"#;
            let c = 'H';
            real_ident();
        "####;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "Instant"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lexed.toks.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        let lexed = lex("let y = pair.0 == x.1;");
        assert!(!lexed.toks.iter().any(|t| t.kind == TokKind::Float));
    }

    #[test]
    fn float_forms() {
        for src in ["1.5", "1.", "1e9", "2.5e-3", "3f32", "4.0f64", "1_000.5"] {
            let lexed = lex(src);
            assert!(
                lexed.toks.iter().any(|t| t.kind == TokKind::Float),
                "{src} should lex as float: {:?}",
                lexed.toks
            );
        }
        for src in ["42", "0xFF", "1u8", "7usize", "1..3"] {
            let lexed = lex(src);
            assert!(
                !lexed.toks.iter().any(|t| t.kind == TokKind::Float),
                "{src} should not contain a float: {:?}",
                lexed.toks
            );
        }
    }

    #[test]
    fn multi_char_ops_lex_whole() {
        let lexed = lex("a == b; c != d; e <= f; p::q");
        let puncts: Vec<_> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&"<="));
        assert!(puncts.contains(&"::"));
    }

    #[test]
    fn cfg_test_blocks_are_stripped() {
        let src = r#"
            fn lib_code() { keep_me(); }
            #[cfg(test)]
            mod tests {
                fn t() { drop_me(); }
            }
            fn more_lib() { also_keep(); }
        "#;
        let lexed = lex(src);
        let kept = strip_cfg_test(&lexed.toks);
        let ids: Vec<&str> = kept
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"keep_me"));
        assert!(ids.contains(&"also_keep"));
        assert!(!ids.contains(&"drop_me"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ after");
        let ids: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, ["after"]);
    }

    #[test]
    fn deeply_nested_block_comments_match_rustc_depth_rules() {
        // rustc nests block comments to arbitrary depth; `*/` tokens inside
        // must pair with their own `/*`.
        let lexed = lex("/* a /* b /* c */ b */ a */ tail");
        let ids = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(ids, ["tail"]);
        // An unterminated nested comment swallows the rest of the file
        // (tolerated, never a panic) — same as rustc's error recovery.
        let lexed = lex("/* open /* inner */ still open... ident");
        assert!(lexed.toks.is_empty());
    }

    #[test]
    fn escaped_quote_char_literal_does_not_leak_a_quote() {
        // `'\''` previously lexed as 3 chars, leaving the closing quote to
        // start a bogus lifetime that ate the next identifier.
        let lexed = lex(r"let q = '\''; let after = 1;");
        let ids = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert!(ids.contains(&"after"), "{ids:?}");
        assert!(
            !lexed.toks.iter().any(|t| t.kind == TokKind::Lifetime),
            "{:?}",
            lexed.toks
        );
    }

    #[test]
    fn escape_sequences_in_char_literals() {
        for src in [r"'\\'", r"'\n'", r"'\u{41}'", r"'\x7f'", r"b'\''"] {
            let lexed = lex(&format!("let c = {src}; done()"));
            assert!(
                lexed.toks.iter().any(|t| is_ident(t, "done")),
                "{src}: {:?}",
                lexed.toks
            );
            assert!(
                lexed.toks.iter().any(|t| t.kind == TokKind::Char),
                "{src} should contain a char literal"
            );
        }
    }

    #[test]
    fn lifetimes_vs_chars_edge_cases() {
        // `'_` and labels are lifetimes; `'a'` in a range pattern is a char.
        let lexed = lex(
            "fn f(x: &'_ str) { 'outer: loop { match c { 'a'..='z' => break 'outer, _ => {} } } }",
        );
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'_", "'outer", "'outer"]);
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn raw_strings_keep_contents_and_hash_depth() {
        // Content (with inner quotes) is preserved on the token but never
        // becomes code tokens; `"#` inside a `r##"…"##` does not terminate.
        let lexed = lex(r###"let s = r##"inner "# quote"##; end()"###);
        let s = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string token");
        assert_eq!(s.text, r##"inner "# quote"##);
        assert!(lexed.toks.iter().any(|t| is_ident(t, "end")));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lexed = lex("let r#type = 1; use_it(r#type)");
        assert!(lexed.toks.iter().any(|t| is_ident(t, "type")));
        assert!(!lexed.toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn multiline_and_continued_strings_count_lines() {
        let lexed = lex("let a = \"l1\nl2\";\nlet b = \"x\\\ny\";\nlast()");
        let last = lexed
            .toks
            .iter()
            .find(|t| is_ident(t, "last"))
            .expect("last ident");
        assert_eq!(last.line, 5, "{:?}", lexed.toks);
    }

    #[test]
    fn string_tokens_carry_contents_for_cfg_feature() {
        let lexed = lex(r#"#[cfg(feature = "strict")] fn gated() {}"#);
        let s = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("feature string");
        assert_eq!(s.text, "strict");
    }

    fn is_ident(t: &Tok, s: &str) -> bool {
        t.kind == TokKind::Ident && t.text == s
    }

    #[test]
    fn cfg_test_ranges_align_with_token_indices() {
        let src = "fn lib() {} #[cfg(test)] mod t { fn x() {} } fn tail() {}";
        let lexed = lex(src);
        let ranges = cfg_test_ranges(&lexed.toks);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        assert_eq!(lexed.toks[s].text, "#");
        assert_eq!(lexed.toks[e - 1].text, "}");
        assert!(lexed.toks[e..].iter().any(|t| is_ident(t, "tail")));
    }
}
