// Fixture: hot-unwrap / hot-panic / hot-index violations — only flagged when
// linted under a designated hot-path file name.
pub fn first(v: &[f32]) -> f32 {
    *v.first().unwrap()
}

pub fn named(m: &std::collections::BTreeMap<String, f32>) -> f32 {
    *m.get("weight").expect("weight present")
}

pub fn pick(v: &[f32], i: usize) -> f32 {
    if i >= v.len() {
        panic!("index out of range");
    }
    v[i]
}

pub fn reserved() -> ! {
    todo!("not written yet")
}
