//! Tape-purity fixture: the tape-free inference entry reaches a tape
//! constructor through a helper — allocation on the serving path.

impl Tape {
    pub fn new() -> Tape {
        Tape
    }
}

impl Model {
    pub fn forward_infer(&self) {
        scratch();
    }
}

fn scratch() {
    let t = Tape::new();
}
