//! Taint fixture: a wall-clock read two calls deep flows into a durable
//! checkpoint sink — the interprocedural pass must connect them.

pub fn save_checkpoint(path: &str) -> f32 {
    stamp()
}

fn stamp() -> f32 {
    freshness()
}

fn freshness() -> f32 {
    let t = Instant::now();
    0.0
}
