// Fixture: entropy-rng violations — time/OS-seeded randomness breaks
// run-to-run reproducibility.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn unseeded() -> StdRng {
    StdRng::from_entropy()
}

pub fn roll() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

pub fn coin() -> bool {
    rand::random()
}
