//! Fixture: `catch_unwind` outside the designated degradation layer.

use std::panic::AssertUnwindSafe;

pub fn swallow_everything(f: impl Fn() -> i32) -> i32 {
    std::panic::catch_unwind(AssertUnwindSafe(|| f())).unwrap_or(0)
}

pub fn swallow_qualified(f: impl Fn() -> i32) -> i32 {
    std::panic::catch_unwind(AssertUnwindSafe(|| f())).unwrap_or(-1)
}
