// Fixture: float-eq violations — exact float equality is almost always a
// tolerance bug, and NaN != NaN makes `!=` a silent trap.
pub fn is_zero(x: f32) -> bool {
    x == 0.0
}

pub fn changed(a: f64, b: f64) -> bool {
    a - b != 0.0
}
