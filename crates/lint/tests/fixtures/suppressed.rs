// Fixture: every violation here carries a justified pragma, so the linter
// must report nothing. Exercises same-line pragmas, previous-line pragmas,
// multi-line wrapped justifications, and multi-rule pragmas.
use std::time::Instant;

pub fn dedup(ids: &[u32]) -> Vec<u32> {
    // glint-lint: allow(hash-collection) — membership-only set, never iterated
    let mut seen = std::collections::HashSet::new();
    ids.iter().copied().filter(|i| seen.insert(*i)).collect()
}

pub fn stamp_for_log() -> Instant {
    Instant::now() // glint-lint: allow(wall-clock) — log timestamp only, never feeds results
}

pub fn jitter() -> bool {
    // glint-lint: allow(entropy-rng) — deliberate nondeterminism: backoff
    // jitter must differ between retries
    rand::random()
}

pub fn cmp_checked(a: f32, b: f32) -> std::cmp::Ordering {
    debug_assert!(!a.is_nan() && !b.is_nan());
    // glint-lint: allow(partial-cmp-unwrap, hot-unwrap) — inputs validated
    // finite by the debug_assert above; release keeps the invariant via the
    // caller
    a.partial_cmp(&b).unwrap()
}

pub fn sort_scores(v: &mut [f32]) {
    // glint-lint: allow(float-cmp-order) — scores are clamped to [0, 1] before
    // this call, so partial_cmp is total here
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn skip_zero(x: f32) -> bool {
    // glint-lint: allow(float-eq) — deliberate IEEE exact-zero test: 0.0 is
    // the sparsity sentinel and is stored exactly
    x == 0.0
}

pub fn hot_first(v: &[f32]) -> f32 {
    if v.is_empty() {
        // glint-lint: allow(hot-panic) — an empty kernel input is a
        // programming error worth aborting on, not a value to fabricate
        panic!("kernel fed an empty slice");
    }
    // glint-lint: allow(hot-unwrap) — guarded by the emptiness check above
    *v.first().unwrap()
}

pub fn hot_pick(v: &[f32], i: usize) -> f32 {
    // glint-lint: allow(hot-index) — index comes from enumerate over v itself
    v[i]
}
