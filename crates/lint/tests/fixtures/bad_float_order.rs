// Fixture: float-cmp-order violations — ordering callbacks built on
// partial_cmp give unstable (or panicking) results on NaN.
pub fn sort(v: &mut [f32]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn top(v: &[f64]) -> Option<&f64> {
    v.iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less))
}
