// Fixture: hash-collection violations (applies in deterministic crates).
use std::collections::{HashMap, HashSet};

pub fn count(words: &[String]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for w in words {
        *m.entry(w.clone()).or_insert(0) += 1;
    }
    m
}

pub fn dedup(ids: &[u32]) -> Vec<u32> {
    let mut seen = HashSet::new();
    ids.iter().copied().filter(|i| seen.insert(*i)).collect()
}
