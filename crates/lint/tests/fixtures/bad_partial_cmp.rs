// Fixture: partial-cmp-unwrap violations — panics the first time a NaN
// reaches the comparison.
pub fn bigger(a: f32, b: f32) -> bool {
    a.partial_cmp(&b).unwrap() == std::cmp::Ordering::Greater
}

pub fn ordering(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("comparable")
}
