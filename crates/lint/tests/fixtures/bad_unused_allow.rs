// Fixture: well-formed, justified pragmas that suppress nothing. Each
// stale (pragma, rule) pair must be reported as `unused-allow` — allows
// that outlive their finding are deleted, not accumulated.

// glint-lint: allow(float-eq) — stale: the comparison below is integer
pub fn int_eq(a: usize, b: usize) -> bool {
    a == b
}

pub fn total(v: &mut [f32]) {
    // glint-lint: allow(float-cmp-order) — stale: the comparator is total_cmp
    v.sort_by(f32::total_cmp);
}

// glint-lint: allow(hot-unwrap, hot-panic) — stale on both rules: nothing
// below unwraps or panics
pub fn calm(v: &[f32]) -> f32 {
    v.iter().copied().fold(0.0, f32::max)
}
