// Fixture: malformed pragmas. Each one is reported under the `pragma` rule,
// and none of them suppress the violations they sit next to.

pub fn unjustified(x: f32) -> bool {
    // glint-lint: allow(float-eq)
    x == 0.0
}

pub fn unknown_rule(x: f32) -> bool {
    // glint-lint: allow(flaot-eq) — typo in the rule name
    x == 0.0
}

pub fn malformed(x: f32) -> bool {
    // glint-lint: float-eq is fine here
    x == 0.0
}

pub fn empty_allow(x: f32) -> bool {
    // glint-lint: allow() — no rule named
    x == 0.0
}

/* glint-lint: allow(float-eq) — block comments are not accepted */
pub fn block_comment(x: f32) -> bool {
    x == 0.0
}
