// Fixture: hot-atomic-ordering / hot-lock violations — flagged only inside
// call-graph-hot fns (the harness seeds hotness from `hot_entry`).
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static COUNTER: AtomicUsize = AtomicUsize::new(0);
static SHARED: Mutex<Vec<f32>> = Mutex::new(Vec::new());

pub fn hot_entry(v: &mut Vec<f32>) -> usize {
    let a = COUNTER.fetch_add(1, Ordering::SeqCst); // hot-atomic-ordering
    let b = COUNTER.load(Ordering::Acquire); // hot-atomic-ordering
    let c = COUNTER.load(Ordering::Relaxed); // allowed
    if let Ok(mut g) = SHARED.lock() {
        // hot-lock above
        g.push(0.0);
    }
    if let Ok(g) = SHARED.try_lock() {
        // hot-lock above
        drop(g);
    }
    v.len() + a + b + c
}

pub fn cold_helper() {
    // Not reachable from `hot_entry`: neither site below may fire.
    let _ = COUNTER.swap(1, Ordering::AcqRel);
    let _ = SHARED.lock();
}
