// Fixture: near misses the linter must NOT flag, even when linted under a
// hot-path + deterministic + no-index file name.

/// Mentions of HashMap, Instant::now(), thread_rng() and x.partial_cmp(&y)
/// .unwrap() in doc comments are not code.
pub fn docs_only() -> &'static str {
    // Neither are comments: HashMap::new(), panic!("no"), v[i] == 0.0
    "strings are not code either: HashMap, Instant::now(), x == 0.0, \
     v.sort_by(|a, b| a.partial_cmp(b).unwrap())"
}

pub fn raw_string() -> &'static str {
    r#"SystemTime::now() inside a raw string with "quotes" stays inert"#
}

/// Total comparators are fine in ordering positions.
pub fn sorted(mut v: Vec<f32>) -> Vec<f32> {
    v.sort_by(f32::total_cmp);
    v
}

/// `unwrap_or` on partial_cmp outside an ordering callback is allowed.
pub fn cmp_or_equal(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// Integer equality and tuple-index fields are not float comparisons.
pub fn ints(pair: (usize, f32), n: usize) -> bool {
    pair.0 == n
}

/// assert!/debug_assert! are contracts, not panics, even on hot paths.
pub fn checked_scale(v: &mut [f32], s: f32) {
    debug_assert!(s.is_finite());
    assert!(!v.is_empty());
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// Iterator access instead of indexing; ranges like 0..n are not slices.
pub fn sum_window(v: &[f32], n: usize) -> f32 {
    v.iter().take(n).sum()
}

#[cfg(test)]
mod tests {
    // cfg(test) code is stripped before linting: unwrap, indexing and float
    // equality are all fine in tests.
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert("k", 1.0f32);
        let v = [1.0f32, 2.0];
        assert!(v[0] == 1.0);
        assert_eq!(*m.get("k").unwrap(), 1.0);
    }
}
