//! Lock-order fixture: two paths acquire the same pair of locks in
//! opposite orders (ABBA deadlock), and one fn holds a lock across a
//! callee that locks again.

pub fn forward_pass() {
    let a = POOL_LOCK.lock();
    let b = STATS_LOCK.lock();
}

pub fn backward_pass() {
    let b = STATS_LOCK.lock();
    let a = POOL_LOCK.lock();
}

pub fn held_across() {
    let g = POOL_LOCK.lock();
    reload();
}

pub fn reload() {
    let h = STATS_LOCK.lock();
}
