// Fixture: wall-clock violations (banned everywhere outside bench crates).
use std::time::{Instant, SystemTime};

pub fn elapsed_ms(f: impl FnOnce()) -> u128 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_millis()
}

pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
