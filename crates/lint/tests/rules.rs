//! Fixture tests: every rule must (a) catch its violation fixture, (b) stay
//! silent on the clean fixture, and (c) honour a justified suppression
//! pragma. Fixtures are linted under masquerade workspace paths so the
//! path-scoped rules (determinism prefixes, hot-path files) apply.

use glint_lint::{lint_source, Config, Finding, RuleId};

/// A path inside a deterministic prefix AND the hot-path list, with
/// `no_index_files` extended to cover it — every rule is live at once.
const HOT: &str = "crates/tensor/src/par.rs";

fn all_rules_config() -> Config {
    let mut cfg = Config::default();
    cfg.no_index_files.push(HOT.to_string());
    cfg
}

fn lint_fixture(src: &str) -> Vec<Finding> {
    lint_source(HOT, src, &all_rules_config())
}

fn count(findings: &[Finding], rule: RuleId) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn hash_collection_catches_hashmap_and_hashset() {
    let f = lint_fixture(include_str!("fixtures/bad_hash.rs"));
    assert!(count(&f, RuleId::HashCollection) >= 3, "{f:?}");
}

#[test]
fn hash_collection_is_scoped_to_deterministic_prefixes() {
    let src = include_str!("fixtures/bad_hash.rs");
    let f = lint_source("crates/ml/src/fixture.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::HashCollection), 0, "{f:?}");
}

#[test]
fn wall_clock_catches_instant_and_system_time() {
    let f = lint_fixture(include_str!("fixtures/bad_clock.rs"));
    assert!(count(&f, RuleId::WallClock) >= 2, "{f:?}");
}

#[test]
fn wall_clock_is_exempt_in_bench() {
    let src = include_str!("fixtures/bad_clock.rs");
    let f = lint_source("crates/bench/src/fixture.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::WallClock), 0, "{f:?}");
}

#[test]
fn entropy_rng_catches_unseeded_generators() {
    let f = lint_fixture(include_str!("fixtures/bad_rng.rs"));
    assert!(count(&f, RuleId::EntropyRng) >= 3, "{f:?}");
}

#[test]
fn partial_cmp_unwrap_catches_unwrap_and_expect() {
    let f = lint_fixture(include_str!("fixtures/bad_partial_cmp.rs"));
    assert_eq!(count(&f, RuleId::PartialCmpUnwrap), 2, "{f:?}");
}

#[test]
fn float_cmp_order_catches_partial_cmp_comparators() {
    let f = lint_fixture(include_str!("fixtures/bad_float_order.rs"));
    assert_eq!(count(&f, RuleId::FloatCmpOrder), 2, "{f:?}");
}

#[test]
fn float_eq_catches_float_equality() {
    let f = lint_fixture(include_str!("fixtures/bad_float_eq.rs"));
    assert_eq!(count(&f, RuleId::FloatEq), 2, "{f:?}");
}

#[test]
fn hot_rules_catch_unwrap_panic_and_indexing() {
    let f = lint_fixture(include_str!("fixtures/bad_hot.rs"));
    assert_eq!(count(&f, RuleId::HotUnwrap), 2, "{f:?}");
    assert!(count(&f, RuleId::HotPanic) >= 2, "{f:?}");
    assert!(count(&f, RuleId::HotIndex) >= 1, "{f:?}");
}

#[test]
fn hot_rules_only_apply_to_designated_files() {
    let src = include_str!("fixtures/bad_hot.rs");
    let f = lint_source("crates/ml/src/fixture.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::HotUnwrap), 0, "{f:?}");
    assert_eq!(count(&f, RuleId::HotPanic), 0, "{f:?}");
    assert_eq!(count(&f, RuleId::HotIndex), 0, "{f:?}");
}

#[test]
fn catch_unwind_is_flagged_outside_degradation_layer() {
    let f = lint_fixture(include_str!("fixtures/bad_catch_unwind.rs"));
    assert_eq!(count(&f, RuleId::CatchUnwind), 2, "{f:?}");
}

#[test]
fn catch_unwind_is_allowed_in_degradation_files() {
    let src = include_str!("fixtures/bad_catch_unwind.rs");
    let f = lint_source("crates/core/src/detector.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::CatchUnwind), 0, "{f:?}");
}

/// Every justified pragma in the suppressed fixture must silence its
/// finding: the file lints completely clean.
#[test]
fn justified_pragmas_suppress_every_rule() {
    let f = lint_fixture(include_str!("fixtures/suppressed.rs"));
    assert!(f.is_empty(), "expected no findings, got: {f:?}");
}

/// The clean fixture has near misses only — strings, comments, doc comments,
/// total_cmp comparators, tuple indices, cfg(test) code — and none may fire.
#[test]
fn clean_fixture_has_no_findings() {
    let f = lint_fixture(include_str!("fixtures/clean.rs"));
    assert!(f.is_empty(), "expected no findings, got: {f:?}");
}

/// Malformed pragmas are findings themselves, and do not suppress anything.
#[test]
fn malformed_pragmas_are_reported_and_do_not_suppress() {
    let f = lint_fixture(include_str!("fixtures/bad_pragma.rs"));
    // unjustified, unknown rule, empty allow(), block comment → pragma
    // findings (the `glint-lint: float-eq is fine` comment lacks `allow(`
    // only after the prefix matches, so it is malformed too).
    assert!(count(&f, RuleId::Pragma) >= 4, "{f:?}");
    // ...and all five float-eq violations still fire (the unknown-rule and
    // block-comment pragmas must not silence their neighbours; the
    // unjustified one is rejected outright).
    assert_eq!(count(&f, RuleId::FloatEq), 5, "{f:?}");
}
