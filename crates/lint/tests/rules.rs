//! Fixture tests: every rule must (a) catch its violation fixture, (b) stay
//! silent on the clean fixture, and (c) honour a justified suppression
//! pragma. Fixtures are linted under masquerade workspace paths so the
//! path-scoped determinism rules apply; hot rules are driven by the call
//! graph, so the harness seeds `hot_entry_points` from the fixture's own
//! fn names (every fixture fn is an entry — maximally hot).

use glint_lint::syntax::FileSyntax;
use glint_lint::{lint_source, Config, Finding, RuleId};

/// A path inside a deterministic prefix — the determinism rules are live.
const HOT: &str = "crates/tensor/src/par.rs";

/// Config that makes every non-test fn in `src` a hot entry point AND a
/// `hot-index` opt-in, so every rule is live at once.
fn all_rules_config(src: &str) -> Config {
    let mut cfg = Config::default();
    let fs = FileSyntax::parse(HOT, src);
    cfg.hot_entry_points = fs
        .fns
        .iter()
        .filter(|f| !f.is_test)
        .map(|f| f.name.clone())
        .collect();
    cfg.no_index_fns = cfg.hot_entry_points.clone();
    cfg
}

fn lint_fixture(src: &str) -> Vec<Finding> {
    lint_source(HOT, src, &all_rules_config(src))
}

fn count(findings: &[Finding], rule: RuleId) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn hash_collection_catches_hashmap_and_hashset() {
    let f = lint_fixture(include_str!("fixtures/bad_hash.rs"));
    assert!(count(&f, RuleId::HashCollection) >= 3, "{f:?}");
}

#[test]
fn hash_collection_is_scoped_to_deterministic_prefixes() {
    let src = include_str!("fixtures/bad_hash.rs");
    let f = lint_source("crates/ml/src/fixture.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::HashCollection), 0, "{f:?}");
}

#[test]
fn wall_clock_catches_instant_and_system_time() {
    let f = lint_fixture(include_str!("fixtures/bad_clock.rs"));
    assert!(count(&f, RuleId::WallClock) >= 2, "{f:?}");
}

#[test]
fn wall_clock_is_exempt_in_bench() {
    let src = include_str!("fixtures/bad_clock.rs");
    let f = lint_source("crates/bench/src/fixture.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::WallClock), 0, "{f:?}");
}

#[test]
fn entropy_rng_catches_unseeded_generators() {
    let f = lint_fixture(include_str!("fixtures/bad_rng.rs"));
    assert!(count(&f, RuleId::EntropyRng) >= 3, "{f:?}");
}

#[test]
fn partial_cmp_unwrap_catches_unwrap_and_expect() {
    let f = lint_fixture(include_str!("fixtures/bad_partial_cmp.rs"));
    assert_eq!(count(&f, RuleId::PartialCmpUnwrap), 2, "{f:?}");
}

#[test]
fn float_cmp_order_catches_partial_cmp_comparators() {
    let f = lint_fixture(include_str!("fixtures/bad_float_order.rs"));
    assert_eq!(count(&f, RuleId::FloatCmpOrder), 2, "{f:?}");
}

#[test]
fn float_eq_catches_float_equality() {
    let f = lint_fixture(include_str!("fixtures/bad_float_eq.rs"));
    assert_eq!(count(&f, RuleId::FloatEq), 2, "{f:?}");
}

#[test]
fn hot_rules_catch_unwrap_panic_and_indexing() {
    let f = lint_fixture(include_str!("fixtures/bad_hot.rs"));
    assert_eq!(count(&f, RuleId::HotUnwrap), 2, "{f:?}");
    assert!(count(&f, RuleId::HotPanic) >= 2, "{f:?}");
    assert!(count(&f, RuleId::HotIndex) >= 1, "{f:?}");
}

/// With the default config, nothing in the fixture is reachable from a real
/// entry point (`matmul`, `GlintDetector::assess`, …) — hotness comes from
/// the call graph, not the file path, so the same file lints clean.
#[test]
fn hot_rules_require_call_graph_reachability() {
    let src = include_str!("fixtures/bad_hot.rs");
    let f = lint_source(HOT, src, &Config::default());
    assert_eq!(count(&f, RuleId::HotUnwrap), 0, "{f:?}");
    assert_eq!(count(&f, RuleId::HotPanic), 0, "{f:?}");
    assert_eq!(count(&f, RuleId::HotIndex), 0, "{f:?}");
}

/// Hotness propagates over calls: seeding only the caller still flags the
/// callee's violations.
#[test]
fn hotness_propagates_to_callees() {
    let src = r#"pub fn entry(v: &[f32]) -> f32 { helper(v) }
fn helper(v: &[f32]) -> f32 { v.iter().copied().next().unwrap() }
fn cold(v: &[f32]) -> f32 { v.iter().copied().last().unwrap() }
"#;
    let cfg = Config {
        hot_entry_points: vec!["entry".into()],
        ..Config::default()
    };
    let f = lint_source(HOT, src, &cfg);
    assert_eq!(count(&f, RuleId::HotUnwrap), 1, "{f:?}");
    assert_eq!(f[0].line, 2, "helper's unwrap, not cold's: {f:?}");
}

#[test]
fn concurrency_rules_fire_only_in_hot_fns() {
    let src = include_str!("fixtures/bad_concurrency.rs");
    let cfg = Config {
        hot_entry_points: vec!["hot_entry".into()],
        ..Config::default()
    };
    let f = lint_source(HOT, src, &cfg);
    assert_eq!(count(&f, RuleId::HotAtomicOrdering), 2, "{f:?}");
    assert_eq!(count(&f, RuleId::HotLock), 2, "{f:?}");
    // `cold_helper`'s AcqRel swap and lock are not reachable → silent.
    assert!(
        f.iter().all(|x| x.line < 24),
        "cold_helper must not fire: {f:?}"
    );
}

#[test]
fn catch_unwind_is_flagged_outside_degradation_layer() {
    let f = lint_fixture(include_str!("fixtures/bad_catch_unwind.rs"));
    assert_eq!(count(&f, RuleId::CatchUnwind), 2, "{f:?}");
}

#[test]
fn catch_unwind_is_allowed_in_degradation_files() {
    let src = include_str!("fixtures/bad_catch_unwind.rs");
    let f = lint_source("crates/core/src/detector.rs", src, &Config::default());
    assert_eq!(count(&f, RuleId::CatchUnwind), 0, "{f:?}");
}

/// Every justified pragma in the suppressed fixture must silence its
/// finding: the file lints completely clean — which also proves none of
/// its pragmas is reported as `unused-allow`.
#[test]
fn justified_pragmas_suppress_every_rule() {
    let f = lint_fixture(include_str!("fixtures/suppressed.rs"));
    assert!(f.is_empty(), "expected no findings, got: {f:?}");
}

/// A well-formed, justified pragma that suppresses nothing is itself a
/// finding — one per stale (pragma, rule) pair.
#[test]
fn unused_allows_are_reported_per_rule() {
    let f = lint_fixture(include_str!("fixtures/bad_unused_allow.rs"));
    assert_eq!(count(&f, RuleId::UnusedAllow), 4, "{f:?}");
    assert_eq!(f.len(), 4, "nothing else may fire: {f:?}");
}

/// Acceptance: moving a hot helper into a different module changes no
/// verdicts. Hotness is call-graph reachability, not path membership, so
/// the same caller/callee pair must produce identical (rule, line, message)
/// findings wherever the callee file lives.
#[test]
fn moving_a_hot_helper_changes_no_verdicts() {
    let entry = "pub fn matmul(v: &[f32]) -> f32 { crate::helpers::pick(v) }\n";
    let helper = "pub fn pick(v: &[f32]) -> f32 { v.iter().copied().next().unwrap() }\n";
    let cfg = Config::default();
    let place = |helper_path: &str| {
        glint_lint::analyze_sources(
            &[
                ("crates/tensor/src/dense.rs".to_string(), entry.to_string()),
                (helper_path.to_string(), helper.to_string()),
            ],
            &cfg,
        )
    };
    let before = place("crates/tensor/src/helpers.rs");
    let after = place("crates/tensor/src/kernels/helpers.rs");
    let verdicts = |a: &glint_lint::Analysis| {
        a.findings
            .iter()
            .map(|f| (f.rule, f.line, f.message.clone()))
            .collect::<Vec<_>>()
    };
    // The helper IS hot (matmul is a default entry point): the unwrap fires.
    assert_eq!(count(&before.findings, RuleId::HotUnwrap), 1, "{before:?}");
    assert_eq!(verdicts(&before), verdicts(&after));
    // The census is equally move-invariant (site count and kinds).
    assert_eq!(before.census.sites.len(), after.census.sites.len());
}

/// The clean fixture has near misses only — strings, comments, doc comments,
/// total_cmp comparators, tuple indices, cfg(test) code — and none may fire.
#[test]
fn clean_fixture_has_no_findings() {
    let f = lint_fixture(include_str!("fixtures/clean.rs"));
    assert!(f.is_empty(), "expected no findings, got: {f:?}");
}

/// Malformed pragmas are findings themselves, and do not suppress anything.
#[test]
fn taint_flow_tracks_sources_into_sinks_across_calls() {
    let f = lint_fixture(include_str!("fixtures/bad_taint.rs"));
    assert!(count(&f, RuleId::TaintFlow) >= 1, "{f:?}");
    let t = f.iter().find(|x| x.rule == RuleId::TaintFlow).unwrap();
    assert!(
        !t.witness.is_empty(),
        "taint findings must carry a witness call chain: {t:?}"
    );
}

#[test]
fn taint_flow_honours_suppression_pragmas() {
    let src = include_str!("fixtures/bad_taint.rs").replace(
        "    let t = Instant::now();",
        "    // glint-lint: allow(taint-flow, wall-clock) — fixture justification\n    \
         let t = Instant::now();",
    );
    let f = lint_fixture(&src);
    assert_eq!(count(&f, RuleId::TaintFlow), 0, "{f:?}");
    assert_eq!(count(&f, RuleId::UnusedAllow), 0, "{f:?}");
}

#[test]
fn lock_order_rules_catch_cycles_and_holds_across_locking_callees() {
    let f = lint_fixture(include_str!("fixtures/bad_lock_order.rs"));
    assert!(count(&f, RuleId::LockCycle) >= 1, "{f:?}");
    assert!(count(&f, RuleId::LockAcrossCall) >= 1, "{f:?}");
}

#[test]
fn tape_purity_flags_inference_fns_that_allocate_tapes() {
    let f = lint_fixture(include_str!("fixtures/bad_tape.rs"));
    assert!(count(&f, RuleId::TapePurity) >= 1, "{f:?}");
}

#[test]
fn malformed_pragmas_are_reported_and_do_not_suppress() {
    let f = lint_fixture(include_str!("fixtures/bad_pragma.rs"));
    // unjustified, unknown rule, empty allow(), block comment → pragma
    // findings (the `glint-lint: float-eq is fine` comment lacks `allow(`
    // only after the prefix matches, so it is malformed too).
    assert!(count(&f, RuleId::Pragma) >= 4, "{f:?}");
    // ...and all five float-eq violations still fire (the unknown-rule and
    // block-comment pragmas must not silence their neighbours; the
    // unjustified one is rejected outright).
    assert_eq!(count(&f, RuleId::FloatEq), 5, "{f:?}");
}
