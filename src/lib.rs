//! # glint-suite
//!
//! Umbrella crate for the Glint reproduction workspace. It re-exports every
//! member crate under one roof so the `examples/` binaries and the top-level
//! integration tests can reach the whole system through a single dependency.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use glint_core as core;
pub use glint_failpoint as failpoint;
pub use glint_gnn as gnn;
pub use glint_graph as graph;
pub use glint_ml as ml;
pub use glint_nlp as nlp;
pub use glint_rules as rules;
pub use glint_serve as serve;
pub use glint_tensor as tensor;
pub use glint_testbed as testbed;
