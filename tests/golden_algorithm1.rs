//! Golden regression test for Algorithm 1 (correlation mining + interaction
//! graph construction).
//!
//! The fixture `tests/data/corpus40.json` is a frozen 40-rule heterogeneous
//! corpus (8 rules per platform, generator seed 0x40). The goldens pin, byte
//! for byte:
//! - the mined action→trigger correlation set (every ordered rule pair the
//!   oracle says A invokes B, with the physical channel it travels via);
//! - the full interaction-graph edge list (action-trigger + shared-device +
//!   condition-duplicate coupling) built by `full_graph` over the fixture.
//!
//! Any silent drift in the NLP features' upstream rule model, the channel
//! taxonomy, or the graph builder shows up as a diff here. To re-freeze
//! after an *intentional* semantic change:
//!
//! ```text
//! GLINT_REGEN_GOLDEN=1 cargo test --test golden_algorithm1
//! ```
//!
//! and review the golden diffs like any other code change.

use glint_core::construction::node_features;
use glint_graph::builder::full_graph;
use glint_rules::correlation::action_triggers;
use glint_rules::{CorpusGenerator, Platform, Rule};
use std::path::{Path, PathBuf};

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

fn regen() -> bool {
    std::env::var("GLINT_REGEN_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The frozen corpus: loaded from the fixture in normal runs; regenerated
/// from the corpus generator (and written back) only in regen mode.
fn corpus() -> Vec<Rule> {
    let path = data_dir().join("corpus40.json");
    if regen() {
        let mut gen = CorpusGenerator::new(0x40);
        let rules: Vec<Rule> = Platform::all()
            .iter()
            .flat_map(|&p| gen.generate_platform(p, 8))
            .collect();
        assert_eq!(rules.len(), 40, "fixture must stay a 40-rule corpus");
        let json = serde_json::to_string_pretty(&rules).expect("serialize corpus");
        std::fs::create_dir_all(data_dir()).expect("create tests/data");
        std::fs::write(&path, json).expect("write corpus fixture");
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} ({e}); regenerate with GLINT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    serde_json::from_str(&text).expect("parse corpus fixture")
}

/// One line per mined ordered correlation: `a -> b via <route>`.
fn mined_correlation_set(rules: &[Rule]) -> String {
    let mut out = String::new();
    for a in rules {
        for b in rules {
            if a.id == b.id {
                continue;
            }
            if let Some(via) = action_triggers(a, b) {
                out.push_str(&format!("{} -> {} via {:?}\n", a.id.0, b.id.0, via));
            }
        }
    }
    out
}

/// One line per interaction-graph edge in builder insertion order.
fn edge_list(rules: &[Rule]) -> String {
    let g = full_graph(rules, &node_features);
    let mut out = format!("nodes {}\n", g.n_nodes());
    for &(u, v, kind) in g.edges() {
        out.push_str(&format!("{u} -> {v} {kind:?}\n"));
    }
    out
}

fn assert_golden(name: &str, actual: &str) {
    let path = data_dir().join(name);
    if regen() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} ({e}); regenerate with GLINT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    if expected != actual {
        // byte-exact comparison with a readable first-divergence report
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |i| i);
        panic!(
            "golden mismatch in {name} at line {} (expected {} lines, got {}):\n  expected: {:?}\n  actual:   {:?}\n\
             If this change is intentional, re-freeze with GLINT_REGEN_GOLDEN=1 and review the diff.",
            line + 1,
            expected.lines().count(),
            actual.lines().count(),
            expected.lines().nth(line).unwrap_or("<eof>"),
            actual.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn fixture_is_a_40_rule_heterogeneous_corpus() {
    let rules = corpus();
    assert_eq!(rules.len(), 40);
    for &p in Platform::all() {
        assert_eq!(
            rules.iter().filter(|r| r.platform == p).count(),
            8,
            "platform {p:?} must contribute exactly 8 rules"
        );
    }
    // the fixture must round-trip: what the goldens pin is the parsed form
    let json = serde_json::to_string(&rules).expect("serialize");
    let back: Vec<Rule> = serde_json::from_str(&json).expect("reparse");
    assert_eq!(back, rules, "corpus fixture does not round-trip");
}

#[test]
fn golden_mined_correlation_set_is_stable() {
    let rules = corpus();
    let mined = mined_correlation_set(&rules);
    assert!(
        mined.lines().count() >= 10,
        "fixture too sparse to be a meaningful oracle: {} correlations",
        mined.lines().count()
    );
    assert_golden("corpus40_correlations.golden", &mined);
}

#[test]
fn golden_interaction_graph_edge_list_is_stable() {
    let rules = corpus();
    let edges = edge_list(&rules);
    assert_golden("corpus40_edges.golden", &edges);
}

/// The mined set and the graph must agree: every mined pair is an
/// ActionTrigger edge and vice versa (the golden files cannot silently
/// drift apart from each other).
#[test]
fn correlation_set_matches_action_trigger_edges() {
    let rules = corpus();
    let g = full_graph(&rules, &node_features);
    let from_graph: Vec<(u32, u32)> = g
        .edges()
        .iter()
        .filter(|(_, _, k)| format!("{k:?}") == "ActionTrigger")
        .map(|&(u, v, _)| (rules[u].id.0, rules[v].id.0))
        .collect();
    let mut from_oracle = Vec::new();
    for (i, a) in rules.iter().enumerate() {
        for (j, b) in rules.iter().enumerate() {
            if i != j && action_triggers(a, b).is_some() {
                from_oracle.push((a.id.0, b.id.0));
            }
        }
    }
    let mut sorted_graph = from_graph.clone();
    sorted_graph.sort_unstable();
    let mut sorted_oracle = from_oracle.clone();
    sorted_oracle.sort_unstable();
    assert_eq!(sorted_graph, sorted_oracle);
}
