//! The paper's running example (Figure 1 / Table 1 / Figure 3) as an
//! executable specification.

use glint_suite::core::construction::node_features;
use glint_suite::core::oracle::{self, ThreatKind};
use glint_suite::graph::builder::{full_graph, OnlineBuilder};
use glint_suite::nlp::parse_rule;
use glint_suite::rules::correlation::action_triggers;
use glint_suite::rules::event::{EventKind, EventLog, EventRecord};
use glint_suite::rules::render::render_rule;
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::Rule;

#[test]
fn figure1_graph_structure() {
    let rules = table1_rules();
    let g = full_graph(&rules, &node_features);
    assert_eq!(g.n_nodes(), 9);
    assert!(
        g.is_heterogeneous(),
        "three platforms → heterogeneous graph"
    );
    // §2.1's example correlations
    let idx = |id: u32| rules.iter().position(|r| r.id.0 == id).unwrap();
    let has_edge = |a: u32, b: u32| {
        g.edges()
            .iter()
            .any(|&(u, v, _)| u == idx(a) && v == idx(b))
    };
    assert!(
        has_edge(1, 9),
        "lights-off (1) triggers lock-door (9) via light"
    );
    assert!(
        has_edge(4, 5),
        "AC-on (4) triggers close-windows (5) via the AC device"
    );
    assert!(
        has_edge(6, 3) || has_edge(6, 5) || g.n_edges() >= 4,
        "window rules interconnect"
    );
}

#[test]
fn the_window_cannot_open_when_smoke_is_detected() {
    // the intro's motivating threat: rule 6 opens the window on smoke, but
    // rules 4+5 (temperature → AC → close windows) force it shut
    let rules = table1_rules();
    let smoke_rule = rules.iter().find(|r| r.id.0 == 6).unwrap();
    let close_rule = rules.iter().find(|r| r.id.0 == 5).unwrap();
    let pair = [smoke_rule, close_rule];
    let findings = oracle::label_rules(&pair);
    assert!(
        findings.iter().any(|f| matches!(
            f.kind,
            ThreatKind::ActionConflict | ThreatKind::ActionRevert
        )),
        "the smoke-window vs AC-window interaction must be flagged: {findings:?}"
    );
}

#[test]
fn table1_rule_text_round_trips_through_nlp() {
    // every rendered rule description parses into non-empty elements
    for r in table1_rules() {
        let text = render_rule(&r);
        let parsed = parse_rule(&text);
        assert!(
            !parsed.action.is_empty() || !parsed.trigger.is_empty(),
            "rule {} parsed to nothing: {text}",
            r.id.0
        );
    }
}

#[test]
fn event_log_replay_reconstructs_the_incident_graph() {
    // Figure 3b's event sequence: movie → lights off → door locked; smoke;
    // temperature 86°F → AC on → windows closed
    let rules = table1_rules();
    let mut log = EventLog::new();
    log.push(EventRecord::new(
        8.0 * 60.0,
        EventKind::RuleFired { rule_id: 1 },
    ));
    log.push(EventRecord::new(
        8.2 * 60.0,
        EventKind::RuleFired { rule_id: 9 },
    ));
    log.push(EventRecord::new(
        38.5 * 60.0,
        EventKind::RuleFired { rule_id: 6 },
    ));
    log.push(EventRecord::new(
        39.5 * 60.0,
        EventKind::RuleFired { rule_id: 4 },
    ));
    log.push(EventRecord::new(
        39.9 * 60.0,
        EventKind::RuleFired { rule_id: 5 },
    ));
    let g = OnlineBuilder::default().build(&rules, &log, 0.0, 3600.0, &node_features);
    // exactly the five executed rules appear (2, 3, 7, 8 did not run)
    assert_eq!(g.n_nodes(), 5);
    let ids: Vec<u32> = g.nodes().iter().map(|n| n.rule_id.0).collect();
    for id in [1, 4, 5, 6, 9] {
        assert!(
            ids.contains(&id),
            "rule {id} missing from the real-time graph"
        );
    }
    for id in [2, 3, 7, 8] {
        assert!(!ids.contains(&id), "rule {id} did not execute but appears");
    }
    // chronology: 1 → 9 edge survives; nothing flows backwards in time
    let idx = |id: u32| ids.iter().position(|&x| x == id).unwrap();
    assert!(g
        .edges()
        .iter()
        .any(|&(u, v, _)| u == idx(1) && v == idx(9)));
}

#[test]
fn correlations_match_table1_narrative() {
    let rules = table1_rules();
    let get = |id: u32| -> &Rule { rules.iter().find(|r| r.id.0 == id).unwrap() };
    // "Rule 1 and Rule 9 interact via light"
    assert!(action_triggers(get(1), get(9)).is_some());
    // "Alexa, play movies has trigger-action correlation with Rule 1"
    assert!(action_triggers(get(4), get(5)).is_some());
    // rule 9's action (lock) does not trigger rule 1 (movie playing)
    assert!(action_triggers(get(9), get(1)).is_none());
}
