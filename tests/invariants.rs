//! Property-based cross-crate invariants.

use glint_suite::core::construction::{node_features, OfflineBuilder};
use glint_suite::core::oracle;
use glint_suite::graph::builder::{full_graph, GraphBuilder};
use glint_suite::rules::{CorpusConfig, CorpusGenerator, Rule};
use proptest::prelude::*;

fn corpus(seed: u64) -> Vec<Rule> {
    CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.0005,
        per_platform_cap: 80,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The oracle is a pure function of the rule set: order-invariant and
    /// deterministic.
    #[test]
    fn oracle_is_order_invariant(seed in 0u64..500, a in 0usize..40, b in 0usize..40, c in 0usize..40) {
        let rules = corpus(seed);
        let pick = |i: usize| &rules[i % rules.len()];
        let fwd = [pick(a), pick(b), pick(c)];
        let rev = [pick(c), pick(b), pick(a)];
        let f1 = oracle::label_rules(&fwd);
        let f2 = oracle::label_rules(&rev);
        prop_assert_eq!(f1.is_empty(), f2.is_empty(), "vulnerability verdict must not depend on order");
    }

    /// Sampled interaction graphs always respect the size contract and
    /// contain only valid edges.
    #[test]
    fn sampled_graphs_are_well_formed(seed in 0u64..200) {
        let rules = corpus(7);
        let mut builder = GraphBuilder::new(&rules, seed);
        let g = builder.sample_graph(2, 9, &node_features);
        prop_assert!(g.n_nodes() >= 2 && g.n_nodes() <= 9);
        for &(u, v, _) in g.edges() {
            prop_assert!(u < g.n_nodes() && v < g.n_nodes());
            prop_assert_ne!(u, v, "no self loops from the builder");
        }
        // node features are non-empty and platform-consistent in dimension
        for n in g.nodes() {
            let expected = if n.platform.is_voice() { 512 } else { 300 };
            prop_assert_eq!(n.features.len(), expected);
        }
    }

    /// Graph JSON serialization round-trips exactly.
    #[test]
    fn dataset_serialization_round_trips(seed in 0u64..100) {
        let rules = corpus(11);
        let builder = OfflineBuilder::new(rules, seed);
        let ds = builder.build_dataset(glint_suite::rules::Platform::all(), 4, 5, true);
        let json = serde_json::to_string(&ds).unwrap();
        let back: glint_suite::graph::GraphDataset = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(ds.graphs(), back.graphs());
    }

    /// The full interaction graph over any subset is a subgraph of the full
    /// interaction graph over the whole set (edge monotonicity).
    #[test]
    fn full_graph_edges_are_monotone(seed in 0u64..100, k in 2usize..6) {
        let rules = corpus(13);
        let mut idx: Vec<usize> = (0..rules.len()).collect();
        // simple seeded shuffle
        let mut s = seed;
        for i in (1..idx.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            idx.swap(i, (s as usize) % (i + 1));
        }
        let subset: Vec<Rule> = idx[..k].iter().map(|&i| rules[i].clone()).collect();
        let g_small = full_graph(&subset, &node_features);
        let all: Vec<Rule> = idx[..(k + 3).min(idx.len())].iter().map(|&i| rules[i].clone()).collect();
        let g_big = full_graph(&all, &node_features);
        // map small-graph edges into big-graph node ids and verify presence
        for &(u, v, kind) in g_small.edges() {
            let ru = g_small.node(u).rule_id;
            let rv = g_small.node(v).rule_id;
            let bu = g_big.nodes().iter().position(|n| n.rule_id == ru).unwrap();
            let bv = g_big.nodes().iter().position(|n| n.rule_id == rv).unwrap();
            prop_assert!(
                g_big.edges().iter().any(|&(x, y, k2)| x == bu && y == bv && k2 == kind),
                "edge {:?}→{:?} lost when the rule set grew", ru, rv
            );
        }
    }
}

#[test]
fn oracle_findings_reference_only_member_rules() {
    let rules = corpus(17);
    for chunk in rules.chunks(4).take(20) {
        let refs: Vec<&Rule> = chunk.iter().collect();
        for f in oracle::label_rules(&refs) {
            for id in &f.rules {
                assert!(
                    chunk.iter().any(|r| r.id.0 == *id),
                    "finding references foreign rule {id}"
                );
            }
        }
    }
}
