//! Trace-layer integration tests: overhead, determinism, and export.
//!
//! Three contracts of `glint-trace` are pinned here, end to end through the
//! real training + detection pipeline:
//!
//! 1. **Bitwise invisibility** — running the identical pipeline with
//!    tracing off and with tracing on produces bit-identical trained
//!    parameters and detection verdicts. Instrumentation may observe the
//!    computation, never steer it.
//! 2. **Deterministic capture** — counter values, span counts, and
//!    histogram buckets are exact functions of the work performed (epoch
//!    counts, verdict rungs), so the trace tree doubles as a test oracle.
//! 3. **Valid export** — the JSON snapshot re-parses with the workspace's
//!    own `serde_json`, carries the schema version, and maps non-finite
//!    samples to `null` rather than emitting invalid tokens. With
//!    `GLINT_TRACE=1` in the environment this test also refreshes the
//!    repo-root `BENCH_trace.json` snapshot that CI validates.
//!
//! The trace registry and its enable gate are process-global, so every test
//! serializes on one mutex and leaves the gate the way the environment
//! asked for it.

use glint_core::construction::OfflineBuilder;
use glint_core::detector::{Degradation, GlintDetector};
use glint_core::drift::DriftDetector;
use glint_gnn::batch::{GraphSchema, PreparedGraph};
use glint_gnn::models::{GraphModel, Itgnn, ItgnnConfig};
use glint_gnn::trainer::{ClassifierTrainer, ContrastiveTrainer, TrainConfig};
use glint_graph::InteractionGraph;
use glint_rules::scenarios::table1_rules;
use glint_rules::Platform;
use glint_tensor::optim::ParamId;
use std::path::Path;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Hold the global-trace lock for one scenario and leave the gate in the
/// state the environment requested, whatever the scenario toggled.
fn with_trace_lock<T>(f: impl FnOnce() -> T) -> T {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let out = f();
    glint_trace::set_enabled(env_wants_tracing());
    out
}

fn env_wants_tracing() -> bool {
    std::env::var("GLINT_TRACE").is_ok_and(|v| !v.is_empty() && v != "0" && v != "false")
}

const CLASSIFIER_EPOCHS: usize = 3;
const EMBEDDER_EPOCHS: usize = 2;
const HEALTHY_GRAPHS: usize = 3;

/// Everything numerically observable from one pipeline run, as raw bits.
#[derive(Debug, PartialEq, Eq)]
struct PipelineDigest {
    classifier_param_bits: Vec<u32>,
    embedder_param_bits: Vec<u32>,
    /// Per assessment: drift-degree bits, probability bits, rung name.
    verdicts: Vec<(u64, u32, &'static str)>,
}

fn param_bits(model: &impl GraphModel) -> Vec<u32> {
    let params = model.params();
    (0..params.len())
        .flat_map(|i| params.get(ParamId(i)).data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Train a tiny classifier + embedder on the Table 1 house, then assess
/// three healthy graphs and one NaN-poisoned graph. Fully seeded: two runs
/// in the same build must agree bit for bit, traced or not.
fn run_pipeline() -> PipelineDigest {
    let rules = table1_rules();
    let builder = OfflineBuilder::new(rules.clone(), 5);
    let mut ds = builder.build_dataset(Platform::all(), 16, 6, true);
    ds.oversample_threats(1);
    let prepared = PreparedGraph::prepare_all(ds.graphs());
    let types = GraphSchema::infer(ds.graphs().iter()).types;
    let cfg = ItgnnConfig {
        hidden: 10,
        embed: 6,
        n_scales: 2,
        ..Default::default()
    };
    let mut classifier = Itgnn::new(&types, cfg.clone());
    ClassifierTrainer::new(TrainConfig {
        epochs: CLASSIFIER_EPOCHS,
        ..Default::default()
    })
    .train(&mut classifier, &prepared);
    let mut embedder = Itgnn::new(&types, cfg);
    ContrastiveTrainer::new(TrainConfig {
        epochs: EMBEDDER_EPOCHS,
        ..Default::default()
    })
    .train(&mut embedder, &prepared);
    let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let drift = DriftDetector::fit(&emb, &labels);

    let digest_classifier = param_bits(&classifier);
    let digest_embedder = param_bits(&embedder);
    let detector = GlintDetector::new(rules, classifier, embedder, drift);

    let mut graphs: Vec<InteractionGraph> = ds
        .graphs()
        .iter()
        .take(HEALTHY_GRAPHS + 1)
        .cloned()
        .collect();
    assert_eq!(graphs.len(), HEALTHY_GRAPHS + 1, "dataset too small");
    // poison the last graph so one assessment lands on the quarantine rung
    let poisoned = {
        let g = graphs.last().unwrap();
        let mut nodes = g.nodes().to_vec();
        nodes[0].features[0] = f32::NAN;
        let mut bad = InteractionGraph::new(nodes);
        for &(s, d, k) in g.edges() {
            bad.add_edge(s, d, k);
        }
        bad
    };
    *graphs.last_mut().unwrap() = poisoned;

    let verdicts = graphs
        .into_iter()
        .map(|g| {
            let det = detector.assess(g);
            let rung = match det.degradation {
                Degradation::None => "full",
                Degradation::DriftOnly(_) => "drift_only",
                Degradation::Quarantined(_) => "quarantined",
            };
            (
                det.drift_degree.to_bits(),
                det.threat_probability.to_bits(),
                rung,
            )
        })
        .collect();

    PipelineDigest {
        classifier_param_bits: digest_classifier,
        embedder_param_bits: digest_embedder,
        verdicts,
    }
}

/// Contract 1: the disabled path is bitwise invisible. The traced run pays
/// for counters, spans, and the grad-norm gauge; none of it may perturb a
/// single bit of the trained parameters or the verdicts.
#[test]
fn tracing_on_or_off_is_bitwise_identical() {
    with_trace_lock(|| {
        glint_trace::set_enabled(false);
        glint_trace::reset();
        let off = run_pipeline();

        glint_trace::set_enabled(true);
        glint_trace::reset();
        let on = run_pipeline();

        assert!(
            !off.classifier_param_bits.is_empty() && !off.embedder_param_bits.is_empty(),
            "digest must actually cover parameters"
        );
        assert_eq!(
            off, on,
            "instrumentation changed the computation it was observing"
        );
        // and the disabled run really did record nothing
        glint_trace::set_enabled(false);
        glint_trace::reset();
        let _ = run_pipeline();
        assert_eq!(glint_trace::counter_value("train.epochs"), 0);
        assert_eq!(glint_trace::span_count("assess"), 0);
    });
}

/// Contracts 2 and 3: exact counter/span/histogram capture for a known
/// workload, and a shim-parseable JSON export of that capture.
#[test]
fn trace_capture_is_an_exact_oracle_and_exports_valid_json() {
    with_trace_lock(|| {
        glint_trace::set_enabled(true);
        glint_trace::reset();
        let digest = run_pipeline();

        // --- training side: epochs and steps are exact counts -------------
        let total_epochs = (CLASSIFIER_EPOCHS + EMBEDDER_EPOCHS) as u64;
        assert_eq!(glint_trace::counter_value("train.epochs"), total_epochs);
        assert_eq!(glint_trace::span_count("classifier_train"), 1);
        assert_eq!(glint_trace::span_count("contrastive_train"), 1);
        assert_eq!(
            glint_trace::span_count("classifier_train/epoch"),
            CLASSIFIER_EPOCHS as u64
        );
        assert_eq!(
            glint_trace::span_count("contrastive_train/epoch"),
            EMBEDDER_EPOCHS as u64
        );
        assert!(
            glint_trace::counter_value("train.steps") >= total_epochs,
            "every epoch takes at least one optimizer step"
        );
        let loss = glint_trace::gauge_value("train.loss").expect("loss gauge set");
        assert!(loss.is_finite());
        assert!(
            glint_trace::gauge_value("train.grad_norm").is_some(),
            "grad-norm gauge set"
        );
        // tensor kernels under the epochs must have been counted
        assert!(glint_trace::counter_value("tensor.matmul.calls") > 0);
        assert!(glint_trace::counter_value("tensor.backward.calls") > 0);

        // --- detection side: one counter per rung, one histogram sample
        //     per non-quarantined assessment (the quarantined verdict has no
        //     drift degree — only its rung counter records it) -------------
        let full = digest.verdicts.iter().filter(|v| v.2 == "full").count() as u64;
        let drift_only = digest
            .verdicts
            .iter()
            .filter(|v| v.2 == "drift_only")
            .count() as u64;
        assert_eq!(
            glint_trace::span_count("assess"),
            (HEALTHY_GRAPHS + 1) as u64
        );
        assert_eq!(glint_trace::counter_value("detector.verdict.full"), full);
        assert_eq!(
            glint_trace::counter_value("detector.verdict.drift_only"),
            drift_only
        );
        assert_eq!(
            glint_trace::counter_value("detector.verdict.quarantined"),
            1
        );
        assert_eq!(
            glint_trace::histogram_total("detector.drift_degree"),
            HEALTHY_GRAPHS as u64
        );
        let drift_hist = glint_trace::snapshot()
            .histograms
            .get("detector.drift_degree")
            .cloned()
            .expect("drift-degree histogram recorded");
        assert_eq!(
            drift_hist.nonfinite, 0,
            "quarantined verdicts must not feed NaN into the drift histogram"
        );

        // --- export: the snapshot re-parses with the workspace serde_json -
        let json = glint_trace::export::to_json(&glint_trace::snapshot(), "observability_test");
        let value: serde_json::Value =
            serde_json::from_str(&json).expect("export must be valid JSON");
        let map = value.as_map().expect("top level is an object");
        let field = |name: &str| {
            map.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("export missing `{name}`"))
        };
        assert_eq!(field("run").as_str(), Some("observability_test"));
        assert_eq!(
            field("schema").as_u64(),
            Some(glint_trace::export::SCHEMA_VERSION)
        );
        let counters = field("counters").as_map().expect("counters object");
        let epochs_json = counters
            .iter()
            .find(|(k, _)| k == "train.epochs")
            .and_then(|(_, v)| v.as_u64());
        assert_eq!(epochs_json, Some(total_epochs));
        assert!(field("spans").as_map().is_some());
        assert!(field("histograms").as_map().is_some());

        // with GLINT_TRACE set, refresh the repo-root snapshot CI validates
        if env_wants_tracing() {
            let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_trace.json");
            glint_trace::export::write_json_to(&path, "cargo_test_observability")
                .expect("write BENCH_trace.json");
        }
    });
}

/// The repo-root `BENCH_trace.json` snapshot must always re-parse with the
/// workspace's own JSON layer and carry the schema header. CI invokes this
/// by name right after the trace-enabled pass regenerates the file; in a
/// plain run it validates the committed snapshot. (Skips only if the file
/// is absent — CI checks existence separately.)
#[test]
fn bench_trace_snapshot_file_is_valid_when_present() {
    with_trace_lock(|| {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_trace.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return;
        };
        let value: serde_json::Value =
            serde_json::from_str(&text).expect("BENCH_trace.json is malformed");
        let map = value.as_map().expect("top level must be an object");
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(
            field("schema").and_then(|v| v.as_u64()),
            Some(glint_trace::export::SCHEMA_VERSION),
            "schema version header missing or wrong"
        );
        assert!(
            field("run")
                .and_then(|v| v.as_str())
                .is_some_and(|r| !r.is_empty()),
            "run name missing"
        );
        for section in ["counters", "gauges", "histograms", "spans"] {
            assert!(
                field(section).and_then(|v| v.as_map()).is_some(),
                "section `{section}` missing"
            );
        }
    });
}

/// The repo-root `BENCH_inference.json` snapshot (emitted by the
/// `micro_inference` harness's deterministic serving workload) must
/// re-parse with the workspace's own JSON layer, carry the schema header,
/// and prove the tape-free serving contract: at least a 10× reduction in
/// `tensor.alloc.matrices` against the `BENCH_trace.json` training
/// baseline. CI invokes this by name right after regenerating the file;
/// in a plain run it validates the committed snapshots. (Skips only if
/// the file is absent — CI checks existence separately.)
#[test]
fn bench_inference_snapshot_file_is_valid_when_present() {
    with_trace_lock(|| {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_inference.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return;
        };
        let value: serde_json::Value =
            serde_json::from_str(&text).expect("BENCH_inference.json is malformed");
        let map = value.as_map().expect("top level must be an object");
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(
            field("schema").and_then(|v| v.as_u64()),
            Some(glint_trace::export::SCHEMA_VERSION),
            "schema version header missing or wrong"
        );
        for section in ["counters", "gauges", "histograms", "spans"] {
            assert!(
                field(section).and_then(|v| v.as_map()).is_some(),
                "section `{section}` missing"
            );
        }
        let counter = |name: &str| {
            field("counters")
                .and_then(|v| v.as_map())
                .and_then(|c| c.iter().find(|(k, _)| k == name))
                .and_then(|(_, v)| v.as_u64())
        };
        let allocs = counter("tensor.alloc.matrices")
            .expect("serving snapshot must report tensor.alloc.matrices");
        assert!(
            counter("serve.steps").is_some_and(|s| s > 0),
            "serving snapshot must record its step count"
        );
        // the 10x gate, re-checked against the committed training baseline
        let trace_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_trace.json");
        if let Ok(trace_text) = std::fs::read_to_string(&trace_path) {
            let trace: serde_json::Value =
                serde_json::from_str(&trace_text).expect("BENCH_trace.json is malformed");
            let baseline = trace
                .as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "counters"))
                .and_then(|(_, v)| v.as_map())
                .and_then(|c| c.iter().find(|(k, _)| k == "tensor.alloc.matrices"))
                .and_then(|(_, v)| v.as_u64());
            if let Some(base) = baseline {
                assert!(
                    allocs * 10 <= base,
                    "serving allocations ({allocs}) must be >=10x below the \
                     training baseline ({base})"
                );
            }
        }
    });
}

/// The repo-root `BENCH_serve.json` snapshot (emitted by the
/// `micro_serve` harness against a live loopback server) must re-parse
/// with the workspace's own JSON layer, carry its schema header, keep
/// the admission accounting exact (`accepted + shed == sent`), and hold
/// the committed p95 latency budget. CI invokes this by name right after
/// regenerating the file; in a plain run it validates the committed
/// snapshot. (Skips only if the file is absent — CI checks existence
/// separately.)
#[test]
fn bench_serve_snapshot_file_is_valid_when_present() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let value: serde_json::Value =
        serde_json::from_str(&text).expect("BENCH_serve.json is malformed");
    let map = value.as_map().expect("top level must be an object");
    let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    assert_eq!(
        field("schema").and_then(|v| v.as_u64()),
        Some(1),
        "schema version header missing or wrong"
    );
    assert_eq!(
        field("run").and_then(|v| v.as_str()),
        Some("micro_serve"),
        "run name missing or wrong"
    );
    assert!(
        field("qps")
            .and_then(|v| v.as_f64())
            .is_some_and(|q| q > 0.0),
        "qps must be present and positive"
    );
    let latency = field("latency_ms")
        .and_then(|v| v.as_map())
        .expect("latency_ms section missing");
    let pctl = |name: &str| {
        latency
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(f64::NAN)
    };
    let (p50, p95, p99) = (pctl("p50"), pctl("p95"), pctl("p99"));
    assert!(
        p50.is_finite() && p95.is_finite() && p99.is_finite() && p50 <= p95 && p95 <= p99,
        "latency percentiles must be finite and ordered: p50 {p50}, p95 {p95}, p99 {p99}"
    );
    let budget = field("p95_budget_ms")
        .and_then(|v| v.as_f64())
        .expect("snapshot must record its p95 budget");
    assert!(
        p95 <= budget,
        "recorded p95 {p95} ms exceeds the committed budget {budget} ms"
    );
    let requests = field("requests")
        .and_then(|v| v.as_map())
        .expect("requests section missing");
    let req = |name: &str| {
        requests
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| panic!("requests.{name} missing"))
    };
    assert_eq!(
        req("accepted") + req("shed"),
        req("sent"),
        "admission accounting must be exact"
    );
    assert!(
        field("degraded")
            .and_then(|v| v.as_map())
            .is_some_and(|d| d.iter().any(|(k, _)| k == "drift_only")),
        "degraded section must break out the drift_only rung"
    );
}

/// The repo-root `BENCH_scale.json` snapshot (emitted by the `micro_scale`
/// churn harness) must re-parse with the workspace's own JSON layer, carry
/// its schema header and counter set, keep the latency percentiles finite
/// and ordered, and hold the incremental-work ratchet: pairs re-mined and
/// homes re-embedded both strictly below their full-rebuild counterparts.
/// CI invokes this by name right after the scale smoke stage; in a plain
/// run it validates the committed snapshot. (Skips only if the file is
/// absent — CI checks existence separately.)
#[test]
fn bench_scale_snapshot_file_is_valid_when_present() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_scale.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let value: serde_json::Value =
        serde_json::from_str(&text).expect("BENCH_scale.json is malformed");
    let map = value.as_map().expect("top level must be an object");
    let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    assert_eq!(
        field("schema").and_then(|v| v.as_u64()),
        Some(1),
        "schema version header missing or wrong"
    );
    assert_eq!(
        field("run").and_then(|v| v.as_str()),
        Some("micro_scale"),
        "run name missing or wrong"
    );
    assert!(
        field("homes")
            .and_then(|v| v.as_u64())
            .is_some_and(|h| h > 0),
        "home count must be present and positive"
    );

    let counters = field("counters")
        .and_then(|v| v.as_map())
        .expect("counters section missing");
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| panic!("counters.{name} missing"))
    };
    assert_eq!(
        counter("verdicts"),
        counter("churn_deltas"),
        "every churn delta must produce exactly one verdict"
    );
    // the scale ratchet: incremental work strictly below a full rebuild
    assert!(
        counter("remined_pairs") < counter("full_mine_pairs"),
        "re-mined neighborhood must stay below the full-corpus pair count"
    );
    assert!(
        counter("reembedded") < counter("full_reembed"),
        "dirty-subgraph re-embeds must stay below full-corpus re-embeds"
    );

    let latency = field("latency_ms")
        .and_then(|v| v.as_map())
        .expect("latency_ms section missing");
    let pctl = |name: &str| {
        latency
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(f64::NAN)
    };
    let (p50, p95, p99) = (pctl("p50"), pctl("p95"), pctl("p99"));
    assert!(
        p50.is_finite() && p95.is_finite() && p99.is_finite() && p50 <= p95 && p95 <= p99,
        "latency percentiles must be finite and ordered: p50 {p50}, p95 {p95}, p99 {p99}"
    );
    assert!(
        field("peak_rss_kb").and_then(|v| v.as_u64()).is_some(),
        "peak RSS must be recorded"
    );
    let ratchet = field("ratchet")
        .and_then(|v| v.as_map())
        .expect("ratchet section missing");
    assert!(
        ratchet
            .iter()
            .any(|(k, v)| k == "pass" && matches!(v, serde_json::Value::Bool(true))),
        "the committed snapshot must record a passing ratchet"
    );
}

/// The non-finite convention in isolation: NaN and ±∞ samples are counted
/// but never bucketed, and export as `null` rather than bare `NaN` tokens
/// that would break any downstream JSON parser.
#[test]
fn non_finite_histogram_samples_export_as_null() {
    with_trace_lock(|| {
        glint_trace::set_enabled(true);
        glint_trace::reset();
        glint_trace::histogram("synthetic.values", 0.2);
        glint_trace::histogram("synthetic.values", f64::NAN);
        glint_trace::histogram("synthetic.values", f64::INFINITY);
        assert_eq!(glint_trace::histogram_total("synthetic.values"), 3);

        let json = glint_trace::export::to_json(&glint_trace::snapshot(), "synthetic");
        assert!(
            !json.contains("NaN") && !json.contains("inf"),
            "non-finite values must never reach the JSON text: {json}"
        );
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let hist = value
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "histograms"))
            .and_then(|(_, v)| v.as_map())
            .and_then(|m| m.iter().find(|(k, _)| k == "synthetic.values"))
            .and_then(|(_, v)| v.as_map())
            .expect("synthetic.values histogram present");
        let get = |name: &str| hist.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(get("count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(get("nonfinite").and_then(|v| v.as_u64()), Some(2));
    });
}
