//! Fault-injection matrix for the train/serve pipeline.
//!
//! Every canonical fail-point site is forced here and the observable outcome
//! is pinned: storage sites surface **typed errors** and leave the previous
//! generation readable; serving sites degrade to a **quarantined or
//! drift-only `Detection`** — no panic ever escapes a public API.
//!
//! Storage-site `panic` actions are deliberately absent from this matrix:
//! a panic mid-save *is* the simulated process crash, and its guarantee
//! (atomic temp-file + rename, so the destination is never torn) is what the
//! kill/resume tests below verify by interrupting and resuming training.
//!
//! The fail-point registry is process-global, so every test serialises on
//! one mutex — two tests arming sites concurrently would steal each other's
//! faults.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use glint_suite::core::construction::OfflineBuilder;
use glint_suite::core::drift::DriftDetector;
use glint_suite::core::persist;
use glint_suite::core::{Degradation, GlintDetector, GlintError};
use glint_suite::failpoint::{self, Action, ScopedFail};
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{GraphModel, Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{
    CheckpointPolicy, ClassifierTrainer, ContrastiveTrainer, TrainConfig, TrainError,
};
use glint_suite::graph::shard;
use glint_suite::graph::store;
use glint_suite::graph::{GraphDataset, InteractionGraph, Node};
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::Platform;
use glint_suite::tensor::checkpoint::{load_checkpoint, save_checkpoint, CheckpointError};
use glint_suite::tensor::par;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialise tests sharing the global fail-point registry. A previous test
/// failing while holding the lock must not cascade, so poison is cleared.
fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Scratch path under the target dir; removed up-front so each run is fresh.
fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("glint-fault-{name}"));
    let _ = std::fs::remove_file(&path);
    path
}

struct Fixture {
    graphs: Vec<InteractionGraph>,
    prepared: Vec<PreparedGraph>,
    schema: GraphSchema,
    cfg: ItgnnConfig,
}

/// One small labeled dataset shared by every test in this binary.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let rules = table1_rules();
        let builder = OfflineBuilder::new(rules, 7);
        let mut ds = builder.build_dataset(Platform::all(), 32, 5, true);
        ds.oversample_threats(7);
        let prepared = PreparedGraph::prepare_all(ds.graphs());
        let schema = GraphSchema::infer(ds.iter());
        let cfg = ItgnnConfig {
            hidden: 12,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        Fixture {
            graphs: ds.graphs().to_vec(),
            prepared,
            schema,
            cfg,
        }
    })
}

fn trained_detector() -> GlintDetector<Itgnn, Itgnn> {
    let fx = fixture();
    let mut classifier = Itgnn::new(&fx.schema.types, fx.cfg.clone());
    ClassifierTrainer::new(TrainConfig {
        epochs: 3,
        ..Default::default()
    })
    .train(&mut classifier, &fx.prepared);
    let mut embedder = Itgnn::new(&fx.schema.types, fx.cfg.clone());
    ContrastiveTrainer::new(TrainConfig {
        epochs: 2,
        ..Default::default()
    })
    .train(&mut embedder, &fx.prepared);
    let emb = ContrastiveTrainer::embed_all(&embedder, &fx.prepared);
    let labels: Vec<usize> = fx.prepared.iter().map(|g| g.label.unwrap_or(0)).collect();
    GlintDetector::new(
        table1_rules(),
        classifier,
        embedder,
        DriftDetector::fit(&emb, &labels),
    )
}

/// A graph the detector can score (borrowed from the shared dataset).
fn sample_graph() -> InteractionGraph {
    fixture().graphs[0].clone()
}

fn params_bitwise_equal(a: &Itgnn, b: &Itgnn) -> bool {
    let pa = a.params();
    let pb = b.params();
    pa.iter().zip(pb.iter()).all(|((na, ma), (nb, mb))| {
        na == nb
            && ma.data().len() == mb.data().len()
            && ma
                .data()
                .iter()
                .zip(mb.data().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    })
}

// ---------------------------------------------------------------------------
// Storage sites: typed errors, previous generation survives.
// ---------------------------------------------------------------------------

#[test]
fn persist_save_faults_yield_typed_errors_and_preserve_previous_model() {
    let _g = serial();
    let fx = fixture();
    let model = Itgnn::new(&fx.schema.types, fx.cfg.clone());
    let path = scratch("persist.json");
    persist::save_params(&model, &path).expect("clean save");

    for action in [Action::Err, Action::ShortWrite(24)] {
        let _fp = ScopedFail::new(persist::SITE_PERSIST_SAVE, action, 1);
        let err = persist::save_params(&model, &path).expect_err("fault must surface");
        assert!(matches!(err, GlintError::Envelope(_)), "unexpected: {err}");
        // Previous generation still loads bit-for-bit.
        let mut reloaded = Itgnn::new(&fx.schema.types, fx.cfg.clone());
        persist::load_params(&mut reloaded, &path).expect("previous generation readable");
        assert!(params_bitwise_equal(&model, &reloaded));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_save_faults_yield_typed_errors() {
    let _g = serial();
    let path = scratch("ckpt-fault.json");
    let ckpt = glint_suite::tensor::TrainCheckpoint::default();
    save_checkpoint(&path, &ckpt).expect("clean save");

    for action in [Action::Err, Action::ShortWrite(10)] {
        let _fp = ScopedFail::new(
            glint_suite::tensor::checkpoint::SITE_CHECKPOINT_SAVE,
            action,
            1,
        );
        let err = save_checkpoint(&path, &ckpt).expect_err("fault must surface");
        assert!(matches!(err, CheckpointError::Envelope(_)), "{err}");
        load_checkpoint(&path).expect("previous checkpoint generation readable");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn store_save_faults_yield_typed_errors_and_preserve_previous_dataset() {
    let _g = serial();
    let path = scratch("store-fault.json");
    let ds = GraphDataset::from_graphs(vec![sample_graph()]);
    store::save(&ds, &path).expect("clean save");

    for action in [Action::Err, Action::ShortWrite(16)] {
        let _fp = ScopedFail::new(store::SITE_STORE_SAVE, action, 1);
        let err = store::save(&ds, &path).expect_err("fault must surface");
        assert!(matches!(err, store::StoreError::Envelope(_)), "{err}");
        let back = store::load(&path).expect("previous dataset generation readable");
        assert_eq!(back.len(), ds.len());
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Shard sites: faults stay confined to one home's shard; re-saving heals.
// ---------------------------------------------------------------------------

/// Fresh scratch *directory* for a sharded store.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glint-fault-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn shard_save_faults_yield_typed_errors_and_preserve_previous_generation() {
    let _g = serial();
    let dir = scratch_dir("shard-save");
    let mut store = shard::ShardedStore::create(&dir).expect("create store");
    let ds = GraphDataset::from_graphs(vec![sample_graph()]);
    store.save_shard(1, &ds).expect("clean save");

    for action in [Action::Err, Action::ShortWrite(16)] {
        let _fp = ScopedFail::new(shard::SITE_SHARD_SAVE, action, 1);
        let err = store.save_shard(1, &ds).expect_err("fault must surface");
        assert!(
            matches!(
                err,
                shard::ShardError::Io(_) | shard::ShardError::Envelope(_)
            ),
            "unexpected: {err}"
        );
        // Previous generation still loads, manifest still agrees.
        let back = store
            .load_shard(1)
            .expect("previous shard generation readable");
        assert_eq!(back, ds);
    }

    // A fault on the *manifest* write (second check at the site) leaves a
    // new, different payload the manifest doesn't vouch for: the load is a
    // typed StaleShard, and re-saving heals it.
    let ds2 = GraphDataset::from_graphs(vec![sample_graph(), sample_graph()]);
    {
        let _fp = ScopedFail::new(shard::SITE_SHARD_SAVE, Action::Err, 2);
        store
            .save_shard(1, &ds2)
            .expect_err("manifest-write fault must surface");
    }
    let store = shard::ShardedStore::open(&dir).expect("reopen from disk manifest");
    match store.load_shard(1) {
        Err(shard::ShardError::StaleShard { home: 1, .. }) => {}
        other => panic!("expected StaleShard after torn manifest write, got {other:?}"),
    }
    let mut store = store;
    store.save_shard(1, &ds2).expect("re-save heals the shard");
    assert_eq!(store.load_shard(1).expect("healed shard loads"), ds2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_load_and_compact_faults_are_typed_and_transient() {
    let _g = serial();
    let dir = scratch_dir("shard-load");
    let mut store = shard::ShardedStore::create(&dir).expect("create store");
    let ds = GraphDataset::from_graphs(vec![sample_graph()]);
    store.save_shard(3, &ds).expect("clean save");

    {
        let _fp = ScopedFail::new(shard::SITE_SHARD_LOAD, Action::Err, 1);
        let err = store.load_shard(3).expect_err("armed load must surface");
        assert!(matches!(err, shard::ShardError::Io(_)), "{err}");
    }
    // Recovery: the fault was transient, the bytes on disk are intact.
    assert_eq!(store.load_shard(3).expect("disarmed load succeeds"), ds);

    {
        let _fp = ScopedFail::new(shard::SITE_SHARD_COMPACT, Action::Err, 1);
        let err = store.compact().expect_err("armed compact must surface");
        assert!(matches!(err, shard::ShardError::Io(_)), "{err}");
    }
    let report = store.compact().expect("disarmed compact succeeds");
    assert_eq!(report.live, 1);
    assert!(report.damaged.is_empty());
    assert_eq!(store.load_shard(3).expect("compacted shard loads"), ds);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Trainer site: interruption is a typed error; resume is bitwise-exact.
// ---------------------------------------------------------------------------

#[test]
fn trainer_interrupt_then_resume_is_bitwise_identical() {
    let _g = serial();
    let fx = fixture();
    let cfg = TrainConfig {
        epochs: 6,
        ..Default::default()
    };
    let path = scratch("trainer-interrupt.json");

    // Uninterrupted reference run.
    let mut reference = Itgnn::new(&fx.schema.types, fx.cfg.clone());
    ClassifierTrainer::new(cfg.clone()).train(&mut reference, &fx.prepared);

    // Interrupted run: the epoch-end fault fires after epoch 3's checkpoint.
    let mut victim = Itgnn::new(&fx.schema.types, fx.cfg.clone());
    let policy = CheckpointPolicy::new(&path, 1);
    {
        let _fp = ScopedFail::new(glint_suite::gnn::trainer::SITE_EPOCH_END, Action::Err, 3);
        let err = ClassifierTrainer::new(cfg.clone())
            .train_resumable(&mut victim, &fx.prepared, &policy)
            .expect_err("injected interruption must surface");
        assert!(matches!(err, TrainError::Interrupted(_)), "{err}");
    }

    // Resume from the checkpoint on a fresh model and finish.
    let mut resumed = Itgnn::new(&fx.schema.types, fx.cfg.clone());
    ClassifierTrainer::new(cfg)
        .train_resumable(&mut resumed, &fx.prepared, &policy)
        .expect("resume completes");
    assert!(
        params_bitwise_equal(&reference, &resumed),
        "resumed trajectory diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trainer_interrupt_then_resume_is_bitwise_identical_serial_threads() {
    let _g = serial();
    par::with_threads(1, || {
        let fx = fixture();
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let path = scratch("trainer-interrupt-serial.json");

        let mut reference = Itgnn::new(&fx.schema.types, fx.cfg.clone());
        ContrastiveTrainer::new(cfg.clone()).train(&mut reference, &fx.prepared);

        let mut victim = Itgnn::new(&fx.schema.types, fx.cfg.clone());
        let policy = CheckpointPolicy::new(&path, 1);
        {
            let _fp = ScopedFail::new(glint_suite::gnn::trainer::SITE_EPOCH_END, Action::Err, 2);
            let err = ContrastiveTrainer::new(cfg.clone())
                .train_resumable(&mut victim, &fx.prepared, &policy)
                .expect_err("injected interruption must surface");
            assert!(matches!(err, TrainError::Interrupted(_)), "{err}");
        }

        let mut resumed = Itgnn::new(&fx.schema.types, fx.cfg.clone());
        ContrastiveTrainer::new(cfg)
            .train_resumable(&mut resumed, &fx.prepared, &policy)
            .expect("resume completes");
        assert!(
            params_bitwise_equal(&reference, &resumed),
            "serial-thread resumed trajectory diverged"
        );
        let _ = std::fs::remove_file(&path);
    });
}

// ---------------------------------------------------------------------------
// Corruption: arbitrary byte damage to a checkpoint is a typed error, never
// a panic, never a silently-wrong load.
// ---------------------------------------------------------------------------

mod corruption {
    use super::*;
    use proptest::prelude::*;

    fn valid_checkpoint_bytes() -> Vec<u8> {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        BYTES
            .get_or_init(|| {
                let path = scratch("proptest-template.json");
                let ckpt = glint_suite::tensor::TrainCheckpoint {
                    rng_state: [1, 2, 3, 4],
                    epochs_done: 2,
                    epoch_losses: vec![0.5, 0.25],
                    ..Default::default()
                };
                save_checkpoint(&path, &ckpt).expect("template save");
                let bytes = std::fs::read(&path).expect("template read");
                let _ = std::fs::remove_file(&path);
                bytes
            })
            .clone()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Flip bytes at random offsets: load must return a typed error or —
        /// when the flip misses every integrity-relevant byte — the original
        /// payload. It must never panic.
        #[test]
        fn random_byte_flips_never_panic(
            offsets in proptest::collection::vec((0usize..4096, 1u8..=255u8), 1..8)
        ) {
            let _g = serial();
            let mut bytes = valid_checkpoint_bytes();
            let mut changed = false;
            for (off, xor) in offsets {
                let off = off % bytes.len();
                bytes[off] ^= xor;
                changed = true;
            }
            let path = scratch("proptest-corrupt.json");
            std::fs::write(&path, &bytes).expect("write corrupted bytes");
            if changed {
                // Either a typed rejection or (if the flip cancelled out /
                // hit only JSON whitespace-equivalent content) a clean load;
                // both are fine — panicking is not. The call itself is the
                // assertion: a panic fails the test.
                let _ = load_checkpoint(&path);
            }
            let _ = std::fs::remove_file(&path);
        }

        /// Truncate at every possible length: always a typed error.
        #[test]
        fn every_truncation_is_a_typed_error(cut in 0usize..4096) {
            let _g = serial();
            let bytes = valid_checkpoint_bytes();
            let cut = cut % bytes.len();
            let path = scratch("proptest-truncate.json");
            std::fs::write(&path, &bytes[..cut]).expect("write truncated bytes");
            let err = load_checkpoint(&path).expect_err("truncation must be rejected");
            prop_assert!(matches!(err, CheckpointError::Envelope(_)), "{}", err);
            let _ = std::fs::remove_file(&path);
        }
    }
}

// ---------------------------------------------------------------------------
// Serving sites: degradation, not propagation.
// ---------------------------------------------------------------------------

#[test]
fn assess_faults_quarantine_instead_of_panicking() {
    let _g = serial();
    let detector = trained_detector();
    for action in [Action::Err, Action::Panic] {
        let _fp = ScopedFail::new(glint_suite::core::detector::SITE_ASSESS, action, 1);
        let det = detector.assess(sample_graph());
        assert!(
            matches!(det.degradation, Degradation::Quarantined(_)),
            "expected quarantine, got {:?}",
            det.degradation
        );
        assert!(det.threat_probability.is_nan());
        assert!(!det.is_threat);
    }
}

#[test]
fn classifier_faults_fall_back_to_drift_only_scoring() {
    let _g = serial();
    let detector = trained_detector();
    for action in [Action::Err, Action::Panic] {
        let _fp = ScopedFail::new(glint_suite::core::detector::SITE_CLASSIFY, action, 1);
        let det = detector.assess(sample_graph());
        assert!(
            matches!(det.degradation, Degradation::DriftOnly(_)),
            "expected drift-only fallback, got {:?}",
            det.degradation
        );
        assert!(
            det.threat_probability.is_finite(),
            "fallback must still produce a usable score"
        );
        assert!((0.0..=1.0).contains(&det.threat_probability));
        assert!(det.drift_degree.is_finite());
    }
}

#[test]
fn batch_fault_degrades_exactly_one_slot() {
    let _g = serial();
    let detector = trained_detector();
    let graphs = vec![sample_graph(), sample_graph(), sample_graph()];
    let _fp = ScopedFail::new(glint_suite::core::detector::SITE_ASSESS, Action::Panic, 1);
    let dets = detector.assess_batch(&graphs);
    assert_eq!(dets.len(), 3);
    let quarantined = dets
        .iter()
        .filter(|d| matches!(d.degradation, Degradation::Quarantined(_)))
        .count();
    let healthy = dets
        .iter()
        .filter(|d| matches!(d.degradation, Degradation::None))
        .count();
    assert_eq!(quarantined, 1, "exactly one slot takes the fault");
    assert_eq!(healthy, 2, "siblings are untouched");
}

#[test]
fn nan_poisoned_graph_in_batch_degrades_only_its_own_slot() {
    let _g = serial();
    par::with_threads(1, || {
        let detector = trained_detector();
        let good = sample_graph();
        let mut poisoned_nodes: Vec<Node> = good.nodes().to_vec();
        if let Some(f) = poisoned_nodes[0].features.first_mut() {
            *f = f32::NAN;
        }
        let mut poisoned = InteractionGraph::new(poisoned_nodes);
        for &(s, d, k) in good.edges() {
            poisoned.add_edge(s, d, k);
        }
        let graphs = vec![good.clone(), poisoned, good];
        let dets = detector.assess_batch(&graphs);
        assert!(matches!(dets[1].degradation, Degradation::Quarantined(_)));
        assert!(dets[1].threat_probability.is_nan());
        for i in [0, 2] {
            assert!(
                matches!(dets[i].degradation, Degradation::None),
                "healthy slot {i} degraded: {:?}",
                dets[i].degradation
            );
            assert!(dets[i].threat_probability.is_finite());
        }
    });
}

// ---------------------------------------------------------------------------
// Environment-driven matrix entry point (used by scripts/ci.sh).
// ---------------------------------------------------------------------------

/// Driven by `GLINT_FAILPOINTS=<site>=<action>`: exercises whichever sites
/// the environment armed and asserts the contract for each. With nothing
/// armed (the normal `cargo test` run) it passes trivially. The ci matrix
/// runs this test alone (filtered) so no sibling test consumes the fault.
#[test]
fn env_forced_matrix() {
    let _g = serial();
    let sites = failpoint::armed_sites();
    if sites.is_empty() {
        return;
    }
    let fx = fixture();
    for site in sites {
        match site.as_str() {
            "persist.save" => {
                let model = Itgnn::new(&fx.schema.types, fx.cfg.clone());
                let path = scratch("env-persist.json");
                persist::save_params(&model, &path)
                    .expect_err("armed persist.save must surface a typed error");
                let _ = std::fs::remove_file(&path);
            }
            "checkpoint.save" => {
                let path = scratch("env-ckpt.json");
                save_checkpoint(&path, &glint_suite::tensor::TrainCheckpoint::default())
                    .expect_err("armed checkpoint.save must surface a typed error");
                let _ = std::fs::remove_file(&path);
            }
            "graph.store.save" => {
                let path = scratch("env-store.json");
                store::save(&GraphDataset::from_graphs(vec![sample_graph()]), &path)
                    .expect_err("armed graph.store.save must surface a typed error");
                let _ = std::fs::remove_file(&path);
            }
            "shard.save" => {
                let dir = scratch_dir("env-shard-save");
                let ds = GraphDataset::from_graphs(vec![sample_graph()]);
                // the armed fault fires at the first `shard.save` check:
                // the manifest write inside `create`
                shard::ShardedStore::create(&dir)
                    .expect_err("armed shard.save must surface a typed error");
                // fault fired once and disarmed: the store recovers cleanly
                let mut store =
                    shard::ShardedStore::create(&dir).expect("disarmed create succeeds");
                store.save_shard(1, &ds).expect("disarmed save succeeds");
                assert_eq!(store.load_shard(1).expect("healed shard loads"), ds);
                let _ = std::fs::remove_dir_all(&dir);
            }
            "shard.load" => {
                let dir = scratch_dir("env-shard-load");
                let mut store = shard::ShardedStore::create(&dir).expect("create store");
                let ds = GraphDataset::from_graphs(vec![sample_graph()]);
                store.save_shard(1, &ds).expect("clean save");
                store
                    .load_shard(1)
                    .expect_err("armed shard.load must surface a typed error");
                // transient fault: the on-disk bytes are intact
                assert_eq!(store.load_shard(1).expect("disarmed load succeeds"), ds);
                let _ = std::fs::remove_dir_all(&dir);
            }
            "shard.compact" => {
                let dir = scratch_dir("env-shard-compact");
                let mut store = shard::ShardedStore::create(&dir).expect("create store");
                let ds = GraphDataset::from_graphs(vec![sample_graph()]);
                store.save_shard(1, &ds).expect("clean save");
                store
                    .compact()
                    .expect_err("armed shard.compact must surface a typed error");
                let report = store.compact().expect("disarmed compact succeeds");
                assert_eq!(report.live, 1);
                assert_eq!(store.load_shard(1).expect("compacted shard loads"), ds);
                let _ = std::fs::remove_dir_all(&dir);
            }
            "trainer.epoch_end" => {
                let path = scratch("env-trainer.json");
                let mut model = Itgnn::new(&fx.schema.types, fx.cfg.clone());
                let err = ClassifierTrainer::new(TrainConfig {
                    epochs: 2,
                    ..Default::default()
                })
                .train_resumable(&mut model, &fx.prepared, &CheckpointPolicy::new(&path, 1))
                .expect_err("armed trainer.epoch_end must interrupt training");
                assert!(matches!(err, TrainError::Interrupted(_)), "{err}");
                let _ = std::fs::remove_file(&path);
            }
            "detector.assess" | "detector.classify" => {
                let detector = trained_detector();
                let det = detector.assess(sample_graph());
                assert!(
                    det.degradation.is_degraded(),
                    "armed {site} must degrade the detection, got {:?}",
                    det.degradation
                );
            }
            site if site.starts_with("serve.") => {
                // Serving sites: whatever the injected failure does to the
                // first request (typed error status, dropped connection, or
                // contained worker panic), the server must survive it — the
                // next request on a fresh connection succeeds, and shutdown
                // completes without hanging.
                use glint_suite::serve::{client, ServeConfig, Server};
                let detector = std::sync::Arc::new(trained_detector());
                let server = Server::start(
                    detector,
                    ServeConfig {
                        workers: 2,
                        deadline_ms: 500,
                        ..Default::default()
                    },
                )
                .expect("serve matrix: bind loopback");
                let addr = server.addr();
                let body = serde_json::json!({
                    "graph": serde_json::to_value(&sample_graph()),
                    "deadline_ms": 500u64,
                });
                // First request absorbs the fault: any typed status or a
                // closed connection is acceptable; a hang or crash is not.
                let first = client::post(&addr, "/score", &body);
                if let Ok((status, _)) = &first {
                    assert!(
                        [200u16, 400, 500, 503].contains(status),
                        "armed {site}: first request got unexpected status {status}"
                    );
                }
                // Faults fire once, then disarm: the service must be healthy.
                let (status, _) = client::post(&addr, "/score", &body).unwrap_or_else(|e| {
                    panic!("armed {site}: server must serve after the fault: {e}")
                });
                assert_eq!(
                    status, 200,
                    "armed {site}: request after the fault must succeed"
                );
                server.shutdown();
            }
            other => panic!("unknown fail-point site in GLINT_FAILPOINTS: {other}"),
        }
    }
}
