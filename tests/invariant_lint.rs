//! Tier-1 self-test: the workspace must be clean under its own invariant
//! checker. Any new HashMap in a deterministic crate, `partial_cmp(..)
//! .unwrap()`, wall-clock read outside bench, or unwrap/panic/lock in a
//! call-graph-hot fn fails this test with a file:line report — the same
//! output `scripts/ci.sh` prints from the `glint-lint` binary stage.
//!
//! Also validates the analysis layer itself: every crate's sources are
//! visited, the BENCH_lint.json report parses under the serde_json shim,
//! and the allocation census is consistent with the `tensor.alloc.*`
//! counters the trace layer records at runtime.

use std::path::Path;

fn analysis() -> glint_lint::Analysis {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    glint_lint::lint_workspace_with(root, &glint_lint::Config::default())
        .expect("workspace sources must be readable")
}

#[test]
fn workspace_is_lint_clean() {
    let findings = analysis().findings;
    assert!(
        findings.is_empty(),
        "glint-lint found {} invariant violation(s):\n{}",
        findings.len(),
        glint_lint::report::human(&findings)
    );
}

/// The analyzer must visit every crate in the workspace — a crate whose
/// sources are silently skipped would lint "clean" by omission.
#[test]
fn every_crate_src_is_visited() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sources = glint_lint::workspace_sources(root).expect("workspace sources must be readable");
    let crates = std::fs::read_dir(root.join("crates")).expect("crates/ must exist");
    for entry in crates {
        let entry = entry.expect("readable dir entry");
        if !entry.path().join("src").is_dir() {
            continue;
        }
        let prefix = format!("crates/{}/src/", entry.file_name().to_string_lossy());
        assert!(
            sources.iter().any(|(path, _)| path.starts_with(&prefix)),
            "no sources visited under {prefix}"
        );
    }
    // The root binary crate rides along too.
    assert!(
        sources.iter().any(|(path, _)| path.starts_with("src/")),
        "root src/ not visited"
    );
}

/// The machine-readable report must parse under the workspace's own
/// serde_json shim and carry the sections ci.sh gates on.
#[test]
fn bench_report_parses_under_serde_json_shim() {
    let a = analysis();
    let doc = glint_lint::report::bench_json(&a);
    let value: serde_json::Value = serde_json::from_str(&doc).expect("BENCH_lint.json must parse");
    let map = value.as_map().expect("top level must be an object");
    let field = |name: &str| {
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field `{name}` in BENCH_lint.json"))
    };
    let graph = field("graph").as_map().expect("graph must be an object");
    for key in ["files", "fns", "resolved_calls", "hot_fns"] {
        let v = graph
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| panic!("graph.{key} must be a number"));
        assert!(v > 0, "graph.{key} must be positive");
    }
    let census = field("census").as_map().expect("census must be an object");
    let total = census
        .iter()
        .find(|(k, _)| k == "total_sites")
        .and_then(|(_, v)| v.as_u64())
        .expect("census.total_sites must be a number");
    assert_eq!(total as usize, a.census.sites.len());
    // The baseline gate reads the same document back.
    assert_eq!(
        glint_lint::report::baseline_total_sites(&doc),
        Some(a.census.sites.len())
    );
    // v3: the panic-surface certificate must be present, non-empty, and
    // readable by the same baseline helper the ratchet uses.
    let surface = field("panic_surface")
        .as_map()
        .expect("panic_surface must be an object");
    let panic_fns = surface
        .iter()
        .find(|(k, _)| k == "panic_fns")
        .and_then(|(_, v)| v.as_u64())
        .expect("panic_surface.panic_fns must be a number");
    assert_eq!(panic_fns as usize, a.panic_surface.len());
    assert!(
        panic_fns > 0,
        "the serving path has known panic-capable fns"
    );
    assert_eq!(
        glint_lint::report::baseline_panic_fns(&doc),
        Some(a.panic_surface.len())
    );
}

/// The committed BENCH_lint.json panic-surface certificate must name the
/// same fns a fresh run finds — a stale snapshot would let the ratchet gate
/// on fiction.
#[test]
fn committed_panic_surface_matches_fresh_run() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(root.join("BENCH_lint.json"))
        .expect("BENCH_lint.json must be committed at the workspace root");
    let value: serde_json::Value = serde_json::from_str(&doc).expect("BENCH_lint.json must parse");
    let committed: Vec<String> = value
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "panic_surface"))
        .and_then(|(_, v)| v.as_map())
        .and_then(|m| m.iter().find(|(k, _)| k == "fns"))
        .and_then(|(_, v)| v.as_seq())
        .expect("panic_surface.fns must be an array")
        .iter()
        .filter_map(|f| {
            f.as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "fn"))
                .and_then(|(_, v)| v.as_str().map(str::to_string))
        })
        .collect();
    let fresh: Vec<String> = analysis()
        .panic_surface
        .iter()
        .map(|p| p.qualified.clone())
        .collect();
    assert_eq!(
        committed, fresh,
        "committed panic surface is stale — regenerate with \
         `cargo run -p glint-lint -- --bench-out BENCH_lint.json`"
    );
}

/// Enum-variant constructors (`Some`, `Ok`, `Err`, local variants) and std
/// staples must never surface in the actionable unresolved list — they are
/// noise, not missing call-graph edges.
#[test]
fn unresolved_list_has_no_variant_ctors_or_staples() {
    let a = analysis();
    let unresolved = a.stats.unresolved;
    for name in [
        "Some", "Ok", "Err", "None", "new", "iter", "len", "push", "clone",
    ] {
        assert!(
            !unresolved.contains_key(name),
            "`{name}` leaked into the actionable unresolved list: {unresolved:?}"
        );
    }
    assert!(
        !unresolved
            .keys()
            .any(|k| k.chars().next().is_some_and(|c| c.is_ascii_uppercase())),
        "capitalized (variant-ctor-shaped) names leaked: {unresolved:?}"
    );
}

/// Regression pin for the determinism-taint fix: the NLP crate feeds
/// `GlintDetector::process_window` (tokenize → embed), so it must stay
/// under the deterministic-prefix umbrella and free of hash-ordered
/// collections in non-test code.
#[test]
fn nlp_crate_is_hash_free_and_deterministic_scoped() {
    let cfg = glint_lint::Config::default();
    assert!(
        cfg.deterministic_prefixes
            .iter()
            .any(|p| p == "crates/nlp/src/"),
        "crates/nlp/src/ must be a deterministic prefix"
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sources = glint_lint::workspace_sources(root).expect("workspace sources must be readable");
    for (path, text) in &sources {
        if !path.starts_with("crates/nlp/src/") {
            continue;
        }
        assert!(
            !text.contains("HashMap") && !text.contains("HashSet"),
            "{path} reintroduced a hash-ordered collection on the \
             detector's text path; use BTreeMap/BTreeSet"
        );
    }
}

/// The census must account for the allocations the trace layer observes at
/// runtime: BENCH_trace.json records `tensor.alloc.matrices` ticks (emitted
/// only by the `Matrix` constructors), so the static census must find
/// matrix-ctor sites reachable from the inference entries — each with a
/// call-chain witness back to an entry point.
#[test]
fn census_covers_traced_allocation_counters() {
    let a = analysis();
    assert!(
        !a.census.sites.is_empty(),
        "inference fast path allocates; the census cannot be empty"
    );
    for site in &a.census.sites {
        assert!(
            !site.chain.is_empty(),
            "census site {}:{} has no chain witness",
            site.file,
            site.line
        );
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let Ok(doc) = std::fs::read_to_string(root.join("BENCH_trace.json")) else {
        return; // trace snapshot not present in this checkout
    };
    let value: serde_json::Value = serde_json::from_str(&doc).expect("BENCH_trace.json must parse");
    let counters = value
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "counters"))
        .and_then(|(_, v)| v.as_map())
        .expect("BENCH_trace.json must have counters");
    let alloc_ticks: u64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("tensor.alloc."))
        .filter_map(|(_, v)| v.as_u64())
        .sum();
    if alloc_ticks > 0 {
        let matrix_sites = a.census.by_kind.get("matrix-ctor").copied().unwrap_or(0);
        assert!(
            matrix_sites > 0,
            "runtime traced {alloc_ticks} tensor.alloc ticks but the census \
             found no reachable matrix-ctor site"
        );
    }
}
