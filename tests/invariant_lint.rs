//! Tier-1 self-test: the workspace must be clean under its own invariant
//! checker. Any new HashMap in a deterministic crate, `partial_cmp(..)
//! .unwrap()`, wall-clock read outside bench, or unwrap in a hot-path module
//! fails this test with a file:line report — the same output `scripts/ci.sh`
//! prints from the `glint-lint` binary stage.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = glint_lint::lint_workspace(root).expect("workspace sources must be readable");
    assert!(
        findings.is_empty(),
        "glint-lint found {} invariant violation(s):\n{}",
        findings.len(),
        glint_lint::report::human(&findings)
    );
}
