//! End-to-end offline pipeline: corpus → NLP correlation discovery →
//! interaction-graph dataset → ITGNN training → held-out detection.

use glint_suite::core::construction::OfflineBuilder;
use glint_suite::core::correlation::{CorrelationDiscoverer, PairDataset};
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, TrainConfig};
use glint_suite::ml::metrics::BinaryMetrics;
use glint_suite::rules::{CorpusConfig, CorpusGenerator, Platform};

fn small_corpus(seed: u64) -> Vec<glint_suite::rules::Rule> {
    CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.002,
        per_platform_cap: 500,
        seed,
    })
}

#[test]
fn correlation_discovery_beats_chance_by_a_wide_margin() {
    let rules = small_corpus(1);
    let train = PairDataset::build(&rules, 250, 350, 1);
    let test = PairDataset::build(&rules, 60, 80, 2);
    let mut disc = CorrelationDiscoverer::new(0);
    disc.fit(&train);
    let m = BinaryMetrics::from_predictions(&test.y, &disc.predict(&test.x));
    assert!(m.accuracy > 0.8, "pipeline correlation accuracy {m}");
    assert!(m.f1 > 0.7, "pipeline correlation F1 {m}");
}

#[test]
fn itgnn_detects_threats_on_held_out_graphs() {
    let builder = OfflineBuilder::new(small_corpus(2), 5);
    let mut ds = builder.build_dataset(
        &[Platform::Ifttt, Platform::SmartThings, Platform::Alexa],
        140,
        8,
        true,
    );
    let stats = ds.class_stats();
    assert!(
        stats.threat >= 10 && stats.normal >= 10,
        "degenerate dataset {stats:?}"
    );
    let split = ds.split(0.8, 3);
    ds = split.train.clone();
    ds.oversample_threats(3);
    let train = PreparedGraph::prepare_all(ds.graphs());
    let test = PreparedGraph::prepare_all(split.test.graphs());
    let schema = GraphSchema::infer(split.train.iter().chain(split.test.iter()));
    let mut model = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            hidden: 32,
            embed: 32,
            n_scales: 2,
            ..Default::default()
        },
    );
    let report = ClassifierTrainer::new(TrainConfig {
        epochs: 16,
        lr: 1e-3,
        ..Default::default()
    })
    .train(&mut model, &train);
    assert!(
        report.improved(),
        "training loss did not fall: {:?}",
        report.epoch_losses
    );
    // capacity: the model must be able to fit the (oversampled) training set
    let train_metrics = ClassifierTrainer::evaluate(&model, &train);
    assert!(
        train_metrics.accuracy > 0.8,
        "ITGNN cannot fit its own training set: {train_metrics}"
    );
    // generalization sanity at this tiny fixture size (the quantitative
    // held-out comparison lives in the exp_table5 / exp_fig8 harnesses at
    // larger scale): metrics must be finite and not catastrophically bad
    let metrics = ClassifierTrainer::evaluate(&model, &test);
    assert!(metrics.accuracy > 0.5, "held-out collapse: {metrics}");
}

#[test]
fn discovered_correlations_rebuild_ground_truth_edges() {
    // the learned correlation classifier must reproduce most edges of the
    // running example's interaction graph from text alone
    let rules = small_corpus(3);
    let train = PairDataset::build(&rules, 250, 350, 4);
    let mut disc = CorrelationDiscoverer::new(1);
    disc.fit(&train);

    let example = glint_suite::rules::scenarios::table1_rules();
    let mut correct = 0;
    let mut total = 0;
    for a in &example {
        for b in &example {
            if a.id == b.id {
                continue;
            }
            let truth = glint_suite::rules::correlation::action_triggers(a, b).is_some();
            let pred = disc.predict_pair(a, b);
            total += 1;
            if truth == pred {
                correct += 1;
            }
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.75, "running-example edge reconstruction {acc:.2}");
}
