//! Drift pipeline: the §4.7 blueprint threats must drift harder than the
//! training distribution, and the detector must keep its false-flag rate on
//! in-distribution data low.

use glint_suite::core::construction::{node_features, OfflineBuilder};
use glint_suite::core::drift::DriftDetector;
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ContrastiveTrainer, TrainConfig};
use glint_suite::graph::builder::full_graph;
use glint_suite::rules::scenarios::drift_blueprints;
use glint_suite::rules::{CorpusConfig, CorpusGenerator, Platform};

struct Fixture {
    model: Itgnn,
    detector: DriftDetector,
    in_dist_degrees: Vec<f64>,
}

fn fixture() -> Fixture {
    let corpus = CorpusGenerator::generate_corpus(&CorpusConfig {
        scale: 0.0015,
        per_platform_cap: 400,
        seed: 21,
    });
    let builder = OfflineBuilder::new(corpus, 21);
    let mut ds = builder.build_dataset(
        &[Platform::Ifttt, Platform::SmartThings, Platform::Alexa],
        90,
        8,
        true,
    );
    ds.oversample_threats(21);
    let prepared = PreparedGraph::prepare_all(ds.graphs());
    let mut schema = GraphSchema::infer(ds.iter());
    for p in [Platform::HomeAssistant, Platform::GoogleAssistant] {
        if schema.dim_of(p).is_none() {
            schema.types.push((p, if p.is_voice() { 512 } else { 300 }));
        }
    }
    schema.types.sort_by_key(|(p, _)| p.type_index());
    let mut model = Itgnn::new(
        &schema.types,
        ItgnnConfig {
            hidden: 24,
            embed: 32,
            n_scales: 2,
            ..Default::default()
        },
    );
    ContrastiveTrainer::new(TrainConfig {
        epochs: 5,
        ..Default::default()
    })
    .train(&mut model, &prepared);
    let emb = ContrastiveTrainer::embed_all(&model, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    let detector = DriftDetector::fit(&emb, &labels);
    let in_dist_degrees = (0..emb.rows())
        .map(|i| detector.drift_degree(emb.row(i)))
        .collect();
    Fixture {
        model,
        detector,
        in_dist_degrees,
    }
}

#[test]
fn blueprints_drift_beyond_the_typical_training_sample() {
    let fx = fixture();
    let mean_in: f64 = fx.in_dist_degrees.iter().sum::<f64>() / fx.in_dist_degrees.len() as f64;
    let mut degrees = Vec::new();
    for (name, rules) in drift_blueprints() {
        let g = full_graph(&rules, &node_features);
        let e = ContrastiveTrainer::embed(&fx.model, &PreparedGraph::from_graph(&g));
        let degree = fx.detector.drift_degree(&e);
        assert!(degree.is_finite(), "{name}: non-finite degree");
        degrees.push(degree);
    }
    let mean_bp: f64 = degrees.iter().sum::<f64>() / degrees.len() as f64;
    assert!(
        mean_bp > mean_in,
        "blueprint patterns ({mean_bp:.2}) should drift beyond the in-distribution mean ({mean_in:.2}): {degrees:?}"
    );
}

#[test]
fn in_distribution_false_flag_rate_is_a_tail() {
    let fx = fixture();
    let flags = fx
        .in_dist_degrees
        .iter()
        .filter(|&&d| d > fx.detector.threshold)
        .count();
    let rate = flags as f64 / fx.in_dist_degrees.len() as f64;
    // the paper's unlabeled pools flag ≈0.5–0.6%; training data itself
    // should flag an even smaller tail — allow up to 10% for tiny models
    assert!(rate < 0.10, "in-distribution drift flag rate {rate:.2}");
}
