//! Overload and degradation contract of `glint-serve`, pinned over real
//! loopback sockets.
//!
//! Three guarantees under pressure:
//!
//! 1. **Bounded admission** — saturating a single-worker, capacity-2
//!    server with a burst sheds the excess with `429 + Retry-After`,
//!    answers every accepted request, and keeps the admission accounting
//!    exact: `accepted + shed == sent`, no hang, no silent drop.
//! 2. **Deadline degradation** — when the estimated full-verdict cost
//!    exceeds the request budget, the answer arrives on the drift-only
//!    rung with an explicit reason, instead of blowing the deadline.
//! 3. **Worker panic isolation** — a panic injected mid-response kills
//!    one worker only: the victim request gets a typed `500`, other
//!    in-flight requests complete normally, a replacement worker spawns,
//!    and the server keeps serving.
//!
//! The fail-point registry is process-global, so tests serialise on one
//! mutex like the fault-injection matrix does.

use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use glint_suite::core::construction::OfflineBuilder;
use glint_suite::core::drift::DriftDetector;
use glint_suite::core::GlintDetector;
use glint_suite::failpoint::{Action, ScopedFail};
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, ContrastiveTrainer, TrainConfig};
use glint_suite::graph::InteractionGraph;
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::Platform;
use glint_suite::serve::{client, ServeConfig, Server, SITE_RESPOND};
use serde_json::{json, Value};

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Fixture {
    detector: Arc<GlintDetector<Itgnn, Itgnn>>,
    graphs: Vec<InteractionGraph>,
}

/// One small trained detector shared by every test in this binary.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let rules = table1_rules();
        let builder = OfflineBuilder::new(rules, 7);
        let mut ds = builder.build_dataset(Platform::all(), 32, 5, true);
        ds.oversample_threats(7);
        let prepared = PreparedGraph::prepare_all(ds.graphs());
        let schema = GraphSchema::infer(ds.iter());
        let cfg = ItgnnConfig {
            hidden: 12,
            embed: 8,
            n_scales: 2,
            ..Default::default()
        };
        let mut classifier = Itgnn::new(&schema.types, cfg.clone());
        ClassifierTrainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .train(&mut classifier, &prepared);
        let mut embedder = Itgnn::new(&schema.types, cfg);
        ContrastiveTrainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .train(&mut embedder, &prepared);
        let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
        let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap_or(0)).collect();
        Fixture {
            detector: Arc::new(GlintDetector::new(
                table1_rules(),
                classifier,
                embedder,
                DriftDetector::fit(&emb, &labels),
            )),
            graphs: ds.graphs().to_vec(),
        }
    })
}

fn score_body(graph: &InteractionGraph, deadline_ms: u64) -> Value {
    json!({ "graph": serde_json::to_value(graph), "deadline_ms": deadline_ms })
}

fn body_field<'a>(body: &'a Value, name: &str) -> Option<&'a Value> {
    body.as_map()?
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
}

fn metric_u64(metrics: &Value, name: &str) -> u64 {
    body_field(metrics, name)
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

#[test]
fn saturated_queue_sheds_with_429_and_answers_every_accepted_request() {
    let _guard = serial();
    let fx = fixture();
    let server = Server::start(
        Arc::clone(&fx.detector) as Arc<dyn glint_suite::serve::Scorer>,
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            deadline_ms: 500,
            full_cost_floor_ms: 1_000,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let mut sent = 0u64;

    // Pin the single worker on a large batch (write it, defer the read).
    let batch: Vec<Value> = fx
        .graphs
        .iter()
        .cycle()
        .take(64)
        .map(serde_json::to_value)
        .collect();
    let mut occupier = TcpStream::connect(addr).expect("connect occupier");
    occupier
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client::write_request(
        &mut occupier,
        "POST",
        "/score_batch",
        Some(&json!({ "graphs": batch, "deadline_ms": 500 })),
    )
    .expect("occupier written");
    sent += 1;
    std::thread::sleep(Duration::from_millis(100));

    // Burst 12 more requests while the worker is busy: capacity 2 means
    // at most 2 can queue; the rest must shed immediately.
    let mut burst = Vec::new();
    for graph in fx.graphs.iter().cycle().take(12) {
        let mut stream = TcpStream::connect(addr).expect("connect burst");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let body = score_body(graph, 500);
        client::write_request(&mut stream, "POST", "/score", Some(&body)).expect("burst written");
        sent += 1;
        burst.push(stream);
    }
    let mut n200 = 0u64;
    let mut n429 = 0u64;
    for mut stream in burst {
        // every connection gets an answer within the timeout — no hangs
        let (status, body) = client::read_response(&mut stream).expect("burst answered");
        match status {
            200 => {
                // accepted under deadline pressure: must ride the ladder
                assert_eq!(
                    body_field(&body, "degradation").and_then(Value::as_str),
                    Some("drift_only"),
                    "deadline-pressured request must answer on the drift-only rung"
                );
                n200 += 1;
            }
            429 => n429 += 1,
            other => panic!("burst request answered with unexpected status {other}"),
        }
    }
    assert!(
        n429 > 0,
        "a capacity-2 queue must shed part of a 12-request burst"
    );
    assert_eq!(n200 + n429, 12, "every burst request must be answered");
    let (status, _) = client::read_response(&mut occupier).expect("occupier answered");
    assert_eq!(status, 200, "the occupying batch must still complete");

    let (status, metrics) = client::get(&addr, "/metrics").expect("metrics");
    sent += 1;
    assert_eq!(status, 200);
    assert_eq!(
        metric_u64(&metrics, "accepted") + metric_u64(&metrics, "shed"),
        sent,
        "admission accounting must be exact: accepted + shed == sent"
    );
    assert_eq!(metric_u64(&metrics, "shed"), n429);
    server.shutdown();
    // shutdown is idempotent (Drop will call it again)
    server.shutdown();
}

#[test]
fn deadline_pressure_degrades_to_drift_only_with_a_reason() {
    let _guard = serial();
    let fx = fixture();
    let server = Server::start(
        Arc::clone(&fx.detector) as Arc<dyn glint_suite::serve::Scorer>,
        ServeConfig {
            full_cost_floor_ms: 1_000,
            deadline_ms: 500,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let (status, body) =
        client::post(&addr, "/score", &score_body(&fx.graphs[0], 500)).expect("scored");
    assert_eq!(status, 200);
    assert_eq!(
        body_field(&body, "degradation").and_then(Value::as_str),
        Some("drift_only")
    );
    let reason = body_field(&body, "reason")
        .and_then(Value::as_str)
        .unwrap_or("");
    assert!(
        reason.contains("deadline"),
        "drift-only reason must name the deadline, got: {reason}"
    );
    // degraded answers still carry usable evidence
    let probability = body_field(&body, "threat_probability")
        .and_then(Value::as_f64)
        .expect("drift-only verdict carries a pseudo-probability");
    assert!((0.0..=1.0).contains(&probability));
    assert!(body_field(&body, "drift_degree")
        .and_then(Value::as_f64)
        .is_some_and(f64::is_finite));
    server.shutdown();
}

#[test]
fn worker_panic_is_contained_respawned_and_other_requests_survive() {
    let _guard = serial();
    let fx = fixture();
    let server = Server::start(
        Arc::clone(&fx.detector) as Arc<dyn glint_suite::serve::Scorer>,
        ServeConfig {
            workers: 4,
            deadline_ms: 500,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    // Fire a panic on the first respond-site hit only.
    let _fail = ScopedFail::new(SITE_RESPOND, Action::Panic, 1);

    let mut statuses = Vec::new();
    for graph in fx.graphs.iter().cycle().take(6) {
        let (status, body) =
            client::post(&addr, "/score", &score_body(graph, 500)).expect("answered");
        statuses.push((status, body));
    }
    let n500 = statuses.iter().filter(|(s, _)| *s == 500).count();
    let n200 = statuses.iter().filter(|(s, _)| *s == 200).count();
    assert_eq!(n500, 1, "exactly one request hits the injected panic");
    assert_eq!(n200, 5, "other in-flight requests must be unaffected");
    let victim = statuses
        .iter()
        .find(|(s, _)| *s == 500)
        .map(|(_, b)| b.clone())
        .expect("victim body");
    let kind = body_field(&victim, "error")
        .and_then(|e| body_field(e, "kind"))
        .and_then(Value::as_str)
        .unwrap_or("");
    assert_eq!(
        kind, "worker_panic",
        "the victim gets a typed error, not silence"
    );

    // The pool healed: a fresh request succeeds and the respawn is counted.
    let (status, _) =
        client::post(&addr, "/score", &score_body(&fx.graphs[0], 500)).expect("post-panic");
    assert_eq!(status, 200, "the server keeps serving after a worker panic");
    let (status, metrics) = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metric_u64(&metrics, "worker_respawns") >= 1,
        "the respawn must be visible in /metrics"
    );
    assert_eq!(
        server.worker_respawns(),
        metric_u64(&metrics, "worker_respawns")
    );
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_400s_not_hangs() {
    let _guard = serial();
    let fx = fixture();
    let server = Server::start(
        Arc::clone(&fx.detector) as Arc<dyn glint_suite::serve::Scorer>,
        ServeConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.addr();
    // not JSON at all
    let (status, body) = client::post(&addr, "/score", &json!("not an object")).expect("answered");
    assert_eq!(status, 400);
    assert!(body_field(&body, "error").is_some());
    // JSON object but no graph
    let (status, _) =
        client::post(&addr, "/score", &json!({ "deadline_ms": 10u64 })).expect("answered");
    assert_eq!(status, 400);
    // unknown route
    let (status, _) = client::get(&addr, "/nope").expect("answered");
    assert_eq!(status, 404);
    // feedback round-trip still works on the same server
    let (status, body) = client::post(
        &addr,
        "/feedback",
        &json!({
            "graph": serde_json::to_value(&fx.graphs[0]),
            "verdict": "Normal",
            "note": "smart bulb schedule, expected"
        }),
    )
    .expect("answered");
    assert_eq!(status, 200);
    assert_eq!(body_field(&body, "stored").and_then(Value::as_u64), Some(1));
    server.shutdown();
}
