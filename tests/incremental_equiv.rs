//! Incremental ⇔ batch equivalence suite for the sharded delta pipeline.
//!
//! The contract under test: **any** sequence of rule add/remove deltas
//! applied through [`IncrementalPipeline::apply`] must leave every home in
//! a state *bitwise identical* to a from-scratch batch rebuild over the
//! final rule sets — same correlation weights (`f32::to_bits`), same graph
//! nodes and edges, same embeddings. Proptest drives randomized delta
//! sequences (seeded churn traces, so removals always target live rules);
//! the batch side replays the trace naively and rebuilds with the shared
//! canonical constructors `mine_all` / `home_graph`.
//!
//! Thread-config coverage comes from CI, which runs this binary under both
//! the default rayon-style pool and `GLINT_THREADS=1`; the assertions are
//! bitwise, so any scheduler-dependent float reassociation would fail here.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use glint_suite::core::incremental::{
    home_graph, mine_all, IncrementalPipeline, OracleMiner, PairCorrelation, RuleChange, RuleDelta,
};
use glint_suite::gnn::batch::PreparedGraph;
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::ContrastiveTrainer;
use glint_suite::rules::{Platform, Rule};
use glint_suite::testbed::churn::{churn_features, CHURN_FEATURE_DIM};
use glint_suite::testbed::{churn_trace, ChurnConfig};

use proptest::prelude::*;

/// One shared embedder: seeded init is deterministic, and the equivalence
/// claim is about the *inputs* we hand it, so a single instance serves
/// every case.
fn embedder() -> &'static Itgnn {
    static MODEL: OnceLock<Itgnn> = OnceLock::new();
    MODEL.get_or_init(|| {
        let types: Vec<(Platform, usize)> = Platform::all()
            .iter()
            .map(|&p| (p, CHURN_FEATURE_DIM))
            .collect();
        Itgnn::new(
            &types,
            ItgnnConfig {
                hidden: 8,
                embed: 8,
                n_scales: 1,
                seed: 0x1dea,
                ..Default::default()
            },
        )
    })
}

/// Naive replay of a delta sequence: per-home rule vectors kept sorted by
/// id, no mining, no caching — the ground truth the pipeline must match.
fn replay(deltas: &[RuleDelta]) -> BTreeMap<u64, Vec<Rule>> {
    let mut homes: BTreeMap<u64, Vec<Rule>> = BTreeMap::new();
    for d in deltas {
        let rules = homes.entry(d.home).or_default();
        match &d.change {
            RuleChange::Add(rule) => {
                let at = rules
                    .binary_search_by_key(&rule.id.0, |r| r.id.0)
                    .unwrap_err();
                rules.insert(at, rule.clone());
            }
            RuleChange::Remove(id) => {
                if let Ok(at) = rules.binary_search_by_key(&id.0, |r| r.id.0) {
                    rules.remove(at);
                }
            }
        }
    }
    homes.retain(|_, v| !v.is_empty());
    homes
}

fn corr_bitwise_equal(
    a: &BTreeMap<(u32, u32), PairCorrelation>,
    b: &BTreeMap<(u32, u32), PairCorrelation>,
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|((ka, va), (kb, vb))| {
            ka == kb
                && va.action_trigger.map(f32::to_bits) == vb.action_trigger.map(f32::to_bits)
                && va.shared_device == vb.shared_device
                && va.action_condition == vb.action_condition
        })
}

/// Apply a seeded churn trace incrementally and check every home against
/// the batch rebuild. Returns the number of homes compared, so callers can
/// assert the case wasn't vacuous.
fn assert_equivalent(trace: &[RuleDelta]) -> usize {
    let mut pipeline = IncrementalPipeline::new();
    for d in trace {
        pipeline
            .apply(d, &churn_features)
            .expect("churn traces only carry valid deltas");
    }
    pipeline.refresh(embedder());

    let ground = replay(trace);
    let live: Vec<u64> = pipeline
        .homes()
        .filter(|(_, s)| !s.rules().is_empty())
        .map(|(h, _)| *h)
        .collect();
    assert_eq!(
        live,
        ground.keys().copied().collect::<Vec<_>>(),
        "incremental and batch disagree on which homes are populated"
    );

    let miner = OracleMiner;
    for (home, rules) in &ground {
        let state = pipeline.home(*home).expect("populated home has state");
        assert_eq!(
            state.rules(),
            rules.as_slice(),
            "home {home}: rule sets differ"
        );

        // correlation weights: bitwise
        let batch_corr = mine_all(&miner, rules);
        assert!(
            corr_bitwise_equal(state.correlations(), &batch_corr),
            "home {home}: incremental correlations diverge from batch\n inc: {:?}\n bat: {:?}",
            state.correlations(),
            batch_corr
        );

        // graph: node-for-node, edge-for-edge (PartialEq covers features)
        let batch_graph =
            home_graph(rules, &batch_corr, &churn_features).expect("non-empty home has a graph");
        let inc_graph = state.graph().expect("populated home keeps a graph");
        assert_eq!(inc_graph, &batch_graph, "home {home}: graphs differ");

        // embeddings: bitwise
        let batch_emb =
            ContrastiveTrainer::embed(embedder(), &PreparedGraph::from_graph(&batch_graph));
        let inc_emb = state.embedding().expect("refreshed home has an embedding");
        assert_eq!(inc_emb.len(), batch_emb.len());
        assert!(
            inc_emb
                .iter()
                .zip(batch_emb.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "home {home}: embeddings diverge bitwise\n inc: {inc_emb:?}\n bat: {batch_emb:?}"
        );
    }
    ground.len()
}

fn trace_for(seed: u64, homes: u64, deltas: u64) -> Vec<RuleDelta> {
    churn_trace(ChurnConfig {
        homes,
        deltas,
        bootstrap_rules: 2,
        max_rules_per_home: 6,
        seed,
        ..ChurnConfig::default()
    })
    .into_iter()
    .map(|e| e.delta)
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random seeded churn traces: adds and removes across several homes,
    /// incremental must match batch bitwise at the end.
    #[test]
    fn random_delta_sequences_match_batch_rebuild(
        seed in 0u64..1_000_000_000,
        homes in 2u64..6,
        deltas in 1u64..48,
    ) {
        let trace = trace_for(seed, homes, deltas);
        let compared = assert_equivalent(&trace);
        prop_assert!(compared > 0, "case must leave at least one populated home");
    }

    /// Refresh cadence must not matter: interleaving embeds mid-sequence
    /// ends in the same bitwise state as one refresh at the end.
    #[test]
    fn interleaved_refreshes_do_not_change_the_final_state(
        seed in 0u64..1_000_000_000,
        stride in 1usize..8,
    ) {
        let trace = trace_for(seed, 3, 32);
        let mut pipeline = IncrementalPipeline::new();
        for (i, d) in trace.iter().enumerate() {
            pipeline.apply(d, &churn_features).expect("valid delta");
            if i % stride == 0 {
                pipeline.refresh(embedder());
            }
        }
        pipeline.refresh(embedder());
        // batch comparison (same assertions as the main property)
        assert_equivalent(&trace);
        // and the interleaved pipeline itself matches the one-shot one
        let mut oneshot = IncrementalPipeline::new();
        for d in &trace {
            oneshot.apply(d, &churn_features).expect("valid delta");
        }
        oneshot.refresh(embedder());
        for (home, state) in pipeline.homes() {
            let other = oneshot.home(*home).expect("same home set");
            prop_assert_eq!(state.rules(), other.rules());
            let (a, b) = (state.embedding(), other.embedding());
            prop_assert_eq!(
                a.map(|e| e.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
                b.map(|e| e.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            );
        }
    }
}

/// A home fully drained by removals must end exactly as the batch rebuild
/// sees it: no rules, no graph, no stale embedding.
#[test]
fn drained_homes_disappear_like_batch() {
    let trace = trace_for(0xd3a1, 2, 20);
    let mut pipeline = IncrementalPipeline::new();
    for d in &trace {
        pipeline.apply(d, &churn_features).expect("valid delta");
    }
    // remove every surviving rule from home 0
    let ids: Vec<u32> = pipeline
        .home(0)
        .map(|s| s.rules().iter().map(|r| r.id.0).collect())
        .unwrap_or_default();
    let mut full = trace;
    for id in ids {
        let d = RuleDelta {
            home: 0,
            change: RuleChange::Remove(glint_suite::rules::RuleId(id)),
        };
        pipeline
            .apply(&d, &churn_features)
            .expect("live rule removes");
        full.push(d);
    }
    pipeline.refresh(embedder());
    let state = pipeline.home(0).expect("home state is retained");
    assert!(state.rules().is_empty());
    assert!(state.graph().is_none(), "drained home must drop its graph");
    assert!(
        state.embedding().is_none(),
        "drained home must drop its embedding"
    );
    assert_equivalent(&full);
}
