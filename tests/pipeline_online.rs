//! End-to-end online pipeline: testbed simulation → attack injection →
//! windowed real-time detection.

use glint_suite::core::construction::OfflineBuilder;
use glint_suite::core::drift::DriftDetector;
use glint_suite::core::GlintDetector;
use glint_suite::gnn::batch::{GraphSchema, PreparedGraph};
use glint_suite::gnn::models::{Itgnn, ItgnnConfig};
use glint_suite::gnn::trainer::{ClassifierTrainer, ContrastiveTrainer, TrainConfig};
use glint_suite::rules::scenarios::table1_rules;
use glint_suite::rules::Platform;
use glint_suite::testbed::attack::{inject, AttackKind};
use glint_suite::testbed::home::figure10_home;
use glint_suite::testbed::sim::{SimConfig, Simulator};

fn trained_detector(seed: u64) -> GlintDetector<Itgnn, Itgnn> {
    let rules = table1_rules();
    let builder = OfflineBuilder::new(rules.clone(), seed);
    let mut ds = builder.build_dataset(Platform::all(), 48, 6, true);
    ds.oversample_threats(seed);
    let prepared = PreparedGraph::prepare_all(ds.graphs());
    let schema = GraphSchema::infer(ds.iter());
    let cfg = ItgnnConfig {
        hidden: 24,
        embed: 16,
        n_scales: 2,
        ..Default::default()
    };
    let mut classifier = Itgnn::new(&schema.types, cfg.clone());
    ClassifierTrainer::new(TrainConfig {
        epochs: 6,
        ..Default::default()
    })
    .train(&mut classifier, &prepared);
    let mut embedder = Itgnn::new(&schema.types, cfg);
    ContrastiveTrainer::new(TrainConfig {
        epochs: 4,
        ..Default::default()
    })
    .train(&mut embedder, &prepared);
    let emb = ContrastiveTrainer::embed_all(&embedder, &prepared);
    let labels: Vec<usize> = prepared.iter().map(|g| g.label.unwrap()).collect();
    GlintDetector::new(
        rules,
        classifier,
        embedder,
        DriftDetector::fit(&emb, &labels),
    )
}

#[test]
fn simulated_day_processes_into_windows() {
    let detector = trained_detector(1);
    let log = Simulator::new(
        figure10_home(),
        table1_rules(),
        SimConfig {
            seed: 9,
            duration_hours: 24.0,
            ..Default::default()
        },
    )
    .run();
    assert!(log.len() > 100);
    let mut non_empty_windows = 0;
    for w in 0..8 {
        let from = w as f64 * 3.0 * 3600.0;
        let det = detector.process_window(&log, from, from + 3.0 * 3600.0);
        if det.graph.n_nodes() > 0 {
            non_empty_windows += 1;
            assert!((0.0..=1.0).contains(&det.threat_probability));
            assert!(det.drift_degree.is_finite());
            // warnings appear exactly when something was flagged
            assert_eq!(det.warning.is_some(), det.is_threat || det.drifting);
        }
    }
    assert!(
        non_empty_windows >= 2,
        "day produced almost no active windows"
    );
}

#[test]
fn attack_injection_changes_detection_surface() {
    let detector = trained_detector(2);
    let clean = Simulator::new(
        figure10_home(),
        table1_rules(),
        SimConfig {
            seed: 10,
            duration_hours: 12.0,
            ..Default::default()
        },
    )
    .run();
    for &attack in AttackKind::all() {
        let tampered = inject(&clean, attack, 31);
        // tampered logs stay processable end-to-end
        let det = detector.process_window(&tampered, 0.0, 12.0 * 3600.0);
        assert!(
            det.threat_probability.is_finite(),
            "{attack:?} broke the pipeline"
        );
    }
}

#[test]
fn every_table4_pair_graph_is_assessable() {
    let detector = trained_detector(3);
    let rules = glint_suite::rules::scenarios::table4_settings();
    for (name, ids) in glint_suite::rules::scenarios::table4_threat_groups() {
        let subset: Vec<glint_suite::rules::Rule> = ids
            .iter()
            .map(|id| rules.iter().find(|r| r.id.0 == *id).unwrap().clone())
            .collect();
        let graph = glint_suite::graph::builder::full_graph(
            &subset,
            &glint_suite::core::construction::node_features,
        );
        let det = detector.assess(graph);
        assert!(
            det.threat_probability.is_finite(),
            "{name} graph not assessable"
        );
    }
}
