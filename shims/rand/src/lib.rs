//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched. This crate reimplements exactly the subset the
//! workspace consumes — `StdRng`/`SmallRng` seeded via `seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom` — on top of a
//! xoshiro256++ core. It is deterministic across platforms but does **not**
//! reproduce upstream `rand`'s value streams.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    /// Panics on an empty range, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Map a `u64` to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable "uniformly at random" without extra parameters.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler over an interval. Mirroring
/// upstream's `SampleUniform` with *generic* `SampleRange` impls matters for
/// inference: `ctx_f32 + rng.gen_range(-0.1..0.1)` must unify the literal's
/// float type with the context instead of falling back to `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let f = unit_f64(rng.next_u64());
                let v = lo as f64 + f * (hi as f64 - lo as f64);
                // guard against rounding up to the excluded endpoint
                if v >= hi as f64 { lo } else { v as $t }
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let f = unit_f64(rng.next_u64());
                (lo as f64 + f * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The xoshiro256++ engine behind both shim generators.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Snapshot the raw engine state (for exact-resume checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild an engine at an exact saved state. The continuation produces
    /// the identical value stream the snapshotted generator would have.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard seeding procedure.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic "standard" generator (xoshiro256++ here, not ChaCha).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl StdRng {
        /// Snapshot the raw engine state (for exact-resume checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.0.state()
        }

        /// Rebuild a generator at an exact saved state.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng(Xoshiro256::from_state(s))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator; identical engine in this shim.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: uniform choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (*rng).gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&y));
            let z: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
