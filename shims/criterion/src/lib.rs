//! Offline shim of the `criterion` API surface used by this workspace's
//! benchmark harnesses. Timing is a simple warmup + fixed-sample median
//! (no statistical analysis, no HTML reports); results are printed as
//! `bench <name> ... <time>/iter`.
//!
//! Set `GLINT_BENCH_FAST=1` to cut samples to the minimum, e.g. when a CI
//! job only needs the harness to run end-to-end.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement driver handed to `b.iter(..)` closures.
pub struct Bencher {
    sample_size: usize,
    /// Filled in by `iter`: median per-iteration time.
    last: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            last: None,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warmup + calibration: how many iterations fit in ~20ms?
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() > Duration::from_millis(20) || warm_iters >= 1_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() / warm_iters as u128;
        // aim each sample at ~5ms of work, at least one iteration
        let iters_per_sample = (5_000_000 / per_iter.max(1)).clamp(1, 10_000) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_nanos() / iters_per_sample as u128);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        self.last = Some(Duration::from_nanos(median as u64));
    }
}

fn fast_mode() -> bool {
    std::env::var("GLINT_BENCH_FAST").is_ok_and(|v| v != "0")
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: if fast_mode() { 2 } else { 10 },
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    match b.last {
        Some(t) => println!("bench {label:<40} {:>12}/iter", format_time(t)),
        None => println!("bench {label:<40} (no iter() call)"),
    }
}

/// Grouped benchmarks (shares the parent's printing, adds a name prefix).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if fast_mode() { 2 } else { n.max(2) };
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchLabel>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        match b.last {
            Some(t) => println!("bench {label:<40} {:>12}/iter", format_time(t)),
            None => println!("bench {label:<40} (no iter() call)"),
        }
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and `BenchmarkId` where criterion takes `id: impl Into<...>`.
pub struct BenchLabel(pub String);

impl From<&str> for BenchLabel {
    fn from(s: &str) -> Self {
        BenchLabel(s.to_string())
    }
}

impl From<String> for BenchLabel {
    fn from(s: String) -> Self {
        BenchLabel(s)
    }
}

impl From<BenchmarkId> for BenchLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchLabel(id.name)
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
