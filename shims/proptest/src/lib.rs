//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! Provides deterministic random-input property testing: the [`proptest!`]
//! macro, range / tuple / `Just` / `vec` / union strategies, and the
//! `prop_assert*` family. No shrinking — a failing case panics with the
//! failure message (inputs are printed by the assertion macros themselves
//! when they format values).

pub mod test_runner {
    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic xoshiro256++ generator seeded per test function.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Seed derived from the test name so every property is independent
        /// but stable across runs.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, n). Panics if `n == 0`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample below 0");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn gen_val(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_val(&self, rng: &mut TestRng) -> T {
            (**self).gen_val(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_val(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_val(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_val(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_val(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_val(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 candidates in a row",
                self.reason
            )
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_val(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].gen_val(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_val(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_val(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_val(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let f = rng.unit_f64();
                    let v = self.start as f64 + f * (self.end as f64 - self.start as f64);
                    if v >= self.end as f64 { self.start } else { v as $t }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_val(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    (lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64)) as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn gen_val(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_val(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// String patterns as strategies, like upstream proptest's regex support
    /// but restricted to the `[class]{min,max}` shape (the only one used in
    /// this workspace). Anything else generates the pattern literally.
    impl Strategy for &str {
        type Value = String;
        fn gen_val(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let mut chars = pat.chars().peekable();
        if chars.peek() != Some(&'[') {
            return pat.to_string();
        }
        chars.next();
        let mut class: Vec<char> = Vec::new();
        while let Some(c) = chars.next() {
            if c == ']' {
                break;
            }
            if c == '-' && !class.is_empty() && chars.peek().is_some_and(|&n| n != ']') {
                let start = *class.last().unwrap() as u32;
                let end = chars.next().unwrap() as u32;
                for u in (start + 1)..=end {
                    if let Some(ch) = char::from_u32(u) {
                        class.push(ch);
                    }
                }
            } else {
                class.push(c);
            }
        }
        assert!(
            !class.is_empty(),
            "empty character class in pattern {pat:?}"
        );
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let rep: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match rep.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad repetition"),
                    hi.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = rep.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| class[rng.below(class.len())]).collect()
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_val(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Vector length specification: exact or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_val(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1)).min(span - 1);
            (0..len).map(|_| self.element.gen_val(rng)).collect()
        }
    }
}

/// Runner configuration (`cases` is the only knob the shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut __done = 0u32;
            let mut __rejects = 0u32;
            while __done < __cfg.cases {
                $(let $pat = $crate::strategy::Strategy::gen_val(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    Ok(()) => __done += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejects += 1;
                        assert!(__rejects < 10_000, "prop_assume! rejected 10000 cases");
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", __done, msg)
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = &$a;
        let __b = &$b;
        $crate::prop_assert!(*__a != *__b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_map(p in (0usize..4, 0usize..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 6);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_and_just(s in prop_oneof![Just("a".to_string()), Just("b".to_string())]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn bool_any(b in crate::bool::ANY) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn generated_fns_run() {
        ranges_in_bounds();
        vec_sizes();
        tuples_and_map();
        assume_rejects();
        oneof_and_just();
        bool_any();
    }
}
