//! Offline shim of the `serde` API surface used by this workspace.
//!
//! The real serde visitor architecture is replaced by a small self-describing
//! value tree: [`Serialize`] renders any supported type into a [`Value`],
//! [`Deserialize`] reads one back. The `derive` feature re-exports the
//! companion `serde_derive` proc macros, which generate `to_value` /
//! `from_value` impls structurally. `serde_json` (also shimmed) is a thin
//! text layer over the same [`Value`].
//!
//! Encoding is self-consistent (round-trips within this shim) but is *not*
//! guaranteed byte-compatible with upstream serde_json.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Generic JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Short tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Ser/de error with a plain message.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Lookup helper used by derived code.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys must render to / parse from strings.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::msg(format!("bad integer map key `{key}`")))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // deterministic output regardless of hash order
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().map(i128::from)
                    .or_else(|| v.as_u64().map(i128::from))
                    .ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f32::NAN),
            _ => v
                .as_f64()
                .map(|x| x as f32)
                .ok_or_else(|| Error::expected("number", v)),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::expected("number", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Deserialize::from_value(v)?;
        let n = vec.len();
        vec.try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
                if s.len() != $len {
                    return Err(Error::msg(format!("expected tuple of {}, got {}", $len, s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: MapKey + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f32::NAN.to_value();
        // shim policy: non-finite floats serialize as a plain number value,
        // NaN deserializes from null
        assert!(f32::from_value(&Value::Null).unwrap().is_nan());
        let _ = v;
    }

    #[test]
    fn map_keys_sorted() {
        let mut m = HashMap::new();
        m.insert(2u32, "b".to_string());
        m.insert(1u32, "a".to_string());
        let v = m.to_value();
        let entries = v.as_map().unwrap();
        assert_eq!(entries[0].0, "1");
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
