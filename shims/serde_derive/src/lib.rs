//! Offline shim of `serde_derive` — generates impls of the shim `serde`
//! crate's `Serialize` / `Deserialize` traits (a `Value`-tree model, not the
//! real visitor architecture).
//!
//! Parsing is done directly on the `proc_macro` token stream (no `syn` /
//! `quote`, which are unavailable offline). Supported input shapes:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like. `#[serde(...)]` attributes are not
//! interpreted; generics are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Copy, Clone, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// Parsed shape of the deriving type.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            let escaped = msg.replace('"', "\\\"");
            return format!("compile_error!(\"serde_derive shim: {escaped}\");")
                .parse()
                .expect("compile_error tokens");
        }
    };
    let code = match (&parsed, mode) {
        (Input::Struct { name, shape }, Mode::Serialize) => gen_struct_ser(name, shape),
        (Input::Struct { name, shape }, Mode::Deserialize) => gen_struct_de(name, shape),
        (Input::Enum { name, variants }, Mode::Serialize) => gen_enum_ser(name, variants),
        (Input::Enum { name, variants }, Mode::Deserialize) => gen_enum_de(name, variants),
    };
    code.parse().expect("generated impl tokens")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // skip outer attributes and visibility
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the shim derive"
            ));
        }
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                None => Shape::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Input::Struct { name, shape })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Input::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parse `ident: Type, ...` out of a brace group, skipping attrs/visibility
/// and type tokens (angle-bracket aware).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // skip field attributes and visibility
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break; // trailing comma
            }
            return Err(format!("expected field name, found {:?}", tokens.get(i)));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        i = skip_type(&tokens, i);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(fields)
}

/// Advance past one type, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Count the comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // skip attrs + visibility before the type
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
        i += 1; // past the comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!("expected variant name, found {:?}", tokens.get(i)));
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // skip an explicit discriminant `= expr`
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_struct_ser(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("Ok({name})"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", __v))?;\n\
                 if __s.len() != {n} {{ return Err(::serde::Error::msg(format!(\"expected {n} fields for {name}, got {{}}\", __s.len()))); }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", __v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => arms.push(format!(
                "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
            )),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push(format!(
                    "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                    binders.join(", "),
                    elems.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let binders = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                arms.push(format!(
                    "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                    entries.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    // unit variants arrive as Value::Str, payload variants as a single-entry map
    let mut unit_arms = Vec::new();
    let mut map_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname}),")),
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                map_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let __s = __payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", __payload))?;\n\
                         if __s.len() != {n} {{ return Err(::serde::Error::msg(format!(\"expected {n} fields for {name}::{vname}, got {{}}\", __s.len()))); }}\n\
                         Ok({name}::{vname}({}))\n\
                     }}",
                    elems.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(__fm, \"{f}\")?)?")
                    })
                    .collect();
                map_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let __fm = __payload.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", __payload))?;\n\
                         Ok({name}::{vname} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {map}\n\
                             __other => Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::Error::expected(\"enum representation\", __other)),\n\
                 }}\n\
             }}\n\
         }}",
        unit = unit_arms.join("\n"),
        map = map_arms.join("\n")
    )
}
