//! Offline shim of the `parking_lot` API surface used by this workspace:
//! `Mutex` / `RwLock` with parking_lot's non-poisoning signatures, backed by
//! the std primitives (poison is swallowed via `into_inner`, matching
//! parking_lot's behaviour of simply continuing after a panicking holder).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
