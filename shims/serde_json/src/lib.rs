//! Offline shim of the `serde_json` API surface used by this workspace:
//! a JSON text layer over the shim `serde` crate's [`Value`] tree, plus the
//! [`json!`] macro. Output is self-consistent (round-trips through this
//! shim) but not guaranteed byte-identical to upstream serde_json.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(format!("io error: {e}")))
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize from a reader (reads to end first).
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::msg(format!("io error: {e}")))?;
    from_str(&buf)
}

/// Build a [`Value`] from JSON-ish syntax. Object values and array elements
/// may be nested `{...}` / `[...]` literals or arbitrary serializable
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {
        $crate::Value::Map($crate::json_object_entries!(@acc [] $($body)*))
    };
    ([ $($body:tt)* ]) => {
        $crate::Value::Seq($crate::json_array_items!(@acc [] $($body)*))
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for [`json!`] object bodies; values may themselves be
/// nested `{...}` / `[...]` literals, `null`, or serializable expressions.
/// Accumulates `(key, value)` pairs and expands to a single `vec![...]`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    (@acc [$($acc:tt)*]) => { vec![$($acc)*] };
    (@acc [$($acc:tt)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(@acc [$($acc)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(@acc [$($acc)* ($key.to_string(), $crate::json!({ $($inner)* })),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(@acc [$($acc)* ($key.to_string(), $crate::json!([ $($inner)* ])),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(@acc [$($acc)* ($key.to_string(), $crate::to_value(&$val)),] $($($rest)*)?)
    };
}

/// Internal muncher for [`json!`] array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    (@acc [$($acc:tt)*]) => { vec![$($acc)*] };
    (@acc [$($acc:tt)*] null $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::json!({ $($inner)* }),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::json!([ $($inner)* ]),] $($($rest)*)?)
    };
    (@acc [$($acc:tt)*] $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_items!(@acc [$($acc)* $crate::to_value(&$val),] $($($rest)*)?)
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = format!("{x:?}");
                out.push_str(&s);
            } else {
                // upstream serde_json refuses non-finite floats; the shim
                // writes null so diverged training runs can still be logged
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid utf8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::msg("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf8 in number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_text_round_trip() {
        let v = json!({
            "name": "glint",
            "n": 3usize,
            "f": 2.5f32,
            "flag": true,
            "list": vec![1u32, 2, 3],
            "nested": json!({"x": -1i64}),
            "missing": Value::Null,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1e300, -2.5e-10, 1.0 / 3.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
    }

    #[test]
    fn escapes() {
        let s = "a\"b\\c\nd\te\u{1f600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
