//! Offline shim of the `crossbeam` API surface used by this workspace:
//! scoped threads (delegating to `std::thread::scope`, which has provided
//! structured concurrency since Rust 1.63) and a re-export of std mpsc as
//! `channel`. One deliberate deviation from upstream crossbeam: `spawn`
//! closures take no `&Scope` argument (nested spawning goes through the
//! scope handle captured by reference instead).

pub mod thread {
    /// Result of joining a (possibly panicked) thread.
    pub use std::thread::Result;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Run `f` with a scope in which borrowing, non-'static threads can be
    /// spawned; all are joined before `scope` returns. Unlike upstream
    /// crossbeam this cannot observe child panics as an `Err` (std's scope
    /// re-panics on join), so the `Result` is always `Ok` on return.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    pub use std::sync::mpsc::{channel, Receiver, RecvError, SendError, Sender};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut partials = [0u64; 2];
        super::thread::scope(|s| {
            let (lo, hi) = data.split_at(4);
            let (p0, p1) = partials.split_at_mut(1);
            let h0 = s.spawn(|| p0[0] = lo.iter().sum());
            let h1 = s.spawn(|| p1[0] = hi.iter().sum());
            h0.join().unwrap();
            h1.join().unwrap();
        })
        .unwrap();
        assert_eq!(partials[0] + partials[1], 36);
    }
}
